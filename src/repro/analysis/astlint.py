"""AST lint rules over the package source (stdlib ``ast``, no deps).

Rules (ids are stable; each finding carries file:line + severity):

* ``kernel-traffic`` (AL001) — a function in ``pim/kernels/`` that
  indexes arrays but never references ``MemoryTraffic`` is moving
  bytes the timing model will never see. Two escapes reflect the
  cost/function split: delegating to a ``*_cost`` helper (the closed
  form constructs the traffic) counts as charging, and a pure
  functional helper may opt out by declaring ``No cost accounting`` in
  its docstring (its callers charge the closed form; AL005 still
  polices uncharged ``run_*`` call sites).
* ``rng-bypass`` (AL002) — direct ``np.random.*(...)`` calls outside
  ``utils/rng.py`` break single-seed reproducibility; route through
  :func:`repro.utils.rng.ensure_rng`.
* ``float-in-integer-path`` (AL003) — introducing float dtypes in the
  DPU integer paths (``pim/kernels/``, ``pim/microcode.py``): DPUs
  have no FPU, and the quantized pipeline defines bit-exact truth.
* ``mutable-default`` (AL004) — mutable dataclass field defaults
  (list/dict/set literals, or ``field(default=<mutable>)``) shared
  across instances.
* ``uncharged-kernel-call`` (AL005) — a function that invokes a
  ``run_*`` PIM kernel but never charges its cost (``_charge`` /
  ``charge``) produces cycles and traffic the timing model and the
  observability layer never see. The kernel package itself (the
  definitions) and ``analysis/`` (the cost cross-checker deliberately
  runs kernels standalone) are exempt.
* ``kernel-registry-bypass`` (AL013) — calling the staged scan
  internals (``scan_distances`` / ``scan_distances_stacked``) directly
  instead of going through the ``repro.pim.backend`` registry. Direct
  calls silently pin the serial NumPy implementation, dodging backend
  selection, the guarded-fallback path, and the
  ``drimann_kernel_*`` metrics. The kernel and backend packages (the
  definitions and the registry's own dispatch) and ``analysis/`` are
  exempt. (AL006–AL012 are the concurrency sanitizer's rules — see
  :mod:`repro.analysis.concurrency`.)
"""

from __future__ import annotations

import ast
import os
from typing import List, Optional

from repro.analysis.findings import Finding, Severity

_FLOAT_DTYPE_NAMES = {
    "float",
    "float16",
    "float32",
    "float64",
    "float128",
    "floating",
    "double",
    "single",
    "half",
}
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_KERNEL_RUNNERS = {
    "run_cluster_locate",
    "run_residual",
    "run_lut_build",
    "run_distance_scan",
    "run_topk_sort",
}
_CHARGE_NAMES = {"_charge", "charge"}


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_kernel_file(path: str) -> bool:
    p = _norm(path)
    return "/pim/kernels/" in p and not p.endswith("__init__.py")


def _is_integer_path_file(path: str) -> bool:
    p = _norm(path)
    return _is_kernel_file(p) or p.endswith("pim/microcode.py")


def _is_rng_module(path: str) -> bool:
    return _norm(path).endswith("utils/rng.py")


def _dotted(node: ast.AST) -> Optional[str]:
    """'np.random.default_rng' for nested Attribute/Name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_float_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        return dotted is not None and dotted.split(".")[-1] in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT_DTYPE_NAMES or node.value.startswith("float")
    return False


def _finding(
    rule: str, severity: Severity, message: str, path: str, node: ast.AST
) -> Finding:
    return Finding(
        checker="ast",
        rule=rule,
        severity=severity,
        message=message,
        file=_norm(path),
        line=getattr(node, "lineno", None),
    )


# ---------------------------------------------------------------- rules
def _check_kernel_traffic(tree: ast.Module, path: str) -> List[Finding]:
    if not _is_kernel_file(path):
        return []
    findings: List[Finding] = []
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        has_subscript = any(
            isinstance(sub, ast.Subscript) for sub in ast.walk(node)
        )
        charges_traffic = any(
            isinstance(sub, ast.Name) and sub.id == "MemoryTraffic"
            for sub in ast.walk(node)
        )
        # Delegating to a closed-form cost helper charges the same
        # traffic the inline construction would have.
        if not charges_traffic:
            charges_traffic = any(
                isinstance(sub, ast.Call)
                and (dotted := _dotted(sub.func)) is not None
                and dotted.split(".")[-1].endswith("_cost")
                for sub in ast.walk(node)
            )
        # Pure functional helpers opt out explicitly: their callers
        # charge the closed-form cost (AL005 polices run_* call sites).
        doc = ast.get_docstring(node) or ""
        if "No cost accounting" in doc:
            continue
        if has_subscript and not charges_traffic:
            findings.append(
                _finding(
                    "kernel-traffic",
                    Severity.ERROR,
                    f"kernel function {node.name!r} accesses array elements "
                    f"but never charges MemoryTraffic; the timing model "
                    f"will not see these bytes",
                    path,
                    node,
                )
            )
    return findings


def _check_rng_bypass(tree: ast.Module, path: str) -> List[Finding]:
    if _is_rng_module(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            findings.append(
                _finding(
                    "rng-bypass",
                    Severity.ERROR,
                    f"direct {dotted}() call bypasses utils/rng.py; accept a "
                    f"seed and normalize it with ensure_rng() so whole-system "
                    f"runs stay reproducible from one integer",
                    path,
                    node,
                )
            )
    return findings


def _check_float_in_integer_path(tree: ast.Module, path: str) -> List[Finding]:
    if not _is_integer_path_file(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        flagged = None
        # x.astype(np.float32) / x.astype("float64") / x.astype(float)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
            and _names_float_dtype(node.args[0])
        ):
            flagged = "astype(<float dtype>)"
        # np.float32(...) constructor casts
        elif isinstance(node.func, ast.Attribute):
            dotted = _dotted(node.func)
            if (
                dotted
                and dotted.split(".")[0] in ("np", "numpy")
                and dotted.split(".")[-1] in _FLOAT_DTYPE_NAMES - {"float"}
            ):
                flagged = f"{dotted}(...)"
        # dtype=float keywords on any call
        if flagged is None:
            for kw in node.keywords:
                if kw.arg == "dtype" and _names_float_dtype(kw.value):
                    flagged = "dtype=<float>"
                    break
        if flagged:
            findings.append(
                _finding(
                    "float-in-integer-path",
                    Severity.ERROR,
                    f"{flagged} in a DPU integer path: DPUs have no FPU and "
                    f"the quantized pipeline defines bit-exact truth",
                    path,
                    node,
                )
            )
    return findings


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted and dotted.split(".")[-1] == "dataclass":
            return True
    return False


def _check_mutable_default(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
            continue
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is None:
                continue
            bad = None
            if isinstance(value, _MUTABLE_LITERALS):
                bad = "a mutable literal"
            elif isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted and dotted.split(".")[-1] == "field":
                    for kw in value.keywords:
                        if kw.arg == "default" and isinstance(
                            kw.value, _MUTABLE_LITERALS
                        ):
                            bad = "field(default=<mutable literal>)"
                            break
            if bad:
                findings.append(
                    _finding(
                        "mutable-default",
                        Severity.ERROR,
                        f"dataclass field in {node.name!r} uses {bad} as its "
                        f"default; one object would be shared by every "
                        f"instance — use field(default_factory=...)",
                        path,
                        stmt,
                    )
                )
    return findings


def _is_charge_exempt_file(path: str) -> bool:
    p = _norm(path)
    return "/pim/kernels/" in p or "/analysis/" in p


def _check_uncharged_kernel_call(tree: ast.Module, path: str) -> List[Finding]:
    if _is_charge_exempt_file(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        kernels_called = set()
        charges = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            dotted = _dotted(sub.func)
            if dotted is None:
                continue
            tail = dotted.split(".")[-1]
            if tail in _KERNEL_RUNNERS:
                kernels_called.add(tail)
            elif tail in _CHARGE_NAMES:
                charges = True
        if kernels_called and not charges:
            names = ", ".join(sorted(kernels_called))
            findings.append(
                _finding(
                    "uncharged-kernel-call",
                    Severity.ERROR,
                    f"function {node.name!r} runs PIM kernel(s) {names} but "
                    f"never charges the cost (_charge/charge); the cycles "
                    f"and traffic are invisible to the timing model and "
                    f"the metrics layer",
                    path,
                    node,
                )
            )
    return findings


_REGISTRY_INTERNALS = {"scan_distances", "scan_distances_stacked"}


def _is_registry_exempt_file(path: str) -> bool:
    p = _norm(path)
    return (
        "/pim/kernels/" in p or "/pim/backend/" in p or "/analysis/" in p
    )


def _check_registry_bypass(tree: ast.Module, path: str) -> List[Finding]:
    if _is_registry_exempt_file(path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        tail = dotted.split(".")[-1]
        if tail in _REGISTRY_INTERNALS:
            findings.append(
                _finding(
                    "kernel-registry-bypass",
                    Severity.ERROR,
                    f"direct call to kernel internal {tail!r} bypasses the "
                    f"repro.pim.backend registry; it pins the serial NumPy "
                    f"implementation and skips backend selection, guarded "
                    f"fallback, and the drimann_kernel_* metrics — scan "
                    f"through resolve_backend(...) instead",
                    path,
                    node,
                )
            )
    return findings


_ALL_RULES = (
    _check_kernel_traffic,
    _check_rng_bypass,
    _check_float_in_integer_path,
    _check_mutable_default,
    _check_uncharged_kernel_call,
    _check_registry_bypass,
)


# ---------------------------------------------------------------- entry
def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one source string as if it lived at ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                checker="ast",
                rule="syntax-error",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                file=_norm(path),
                line=exc.lineno,
            )
        ]
    findings: List[Finding] = []
    for rule in _ALL_RULES:
        findings += rule(tree, path)
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, encoding="utf-8") as f:
        return lint_source(f.read(), path)


def lint_tree(root: str) -> List[Finding]:
    """Lint every ``.py`` file under ``root`` (a package directory)."""
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                findings += lint_file(os.path.join(dirpath, name))
    return findings
