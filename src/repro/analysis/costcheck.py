"""Cost-claim cross-check: contracts vs kernels vs the micro-interpreter.

Each kernel reports an analytic :class:`InstructionMix`/:class:`MemoryTraffic`
and declares the same quantities in closed form in its
:class:`~repro.analysis.contracts.ResourceContract`. This checker turns
the scattered "counts must match" test assertions into one uniform
pass:

* **contract vs kernel** — run each vectorized kernel on small
  canonical shapes and diff its reported cost against the contract's
  closed form (all five kernels, both multiplier variants);
* **contract vs microcode** — execute the hand-written micro programs
  in :mod:`repro.pim.microcode` instruction-by-instruction on the same
  shapes and diff the *measured* counts against the contract (RC, LC,
  DC — the kernels with micro programs).

Any per-class delta is an error-severity finding carrying the full
``{class: (claimed, measured)}`` payload. External contract modules
(e.g. the deliberately-broken test fixture) are checked with
:func:`check_contract_module`.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.contracts import (
    KernelShape,
    ResourceContract,
    mix_delta,
    traffic_delta,
)
from repro.analysis.findings import Finding, Severity
from repro.core.square_lut import SquareLut
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.kernels import KERNEL_CONTRACTS
from repro.pim.kernels.cluster_locate import run_cluster_locate
from repro.pim.kernels.distance_scan import run_distance_scan
from repro.pim.kernels.lut_build import run_lut_build
from repro.pim.kernels.residual import run_residual
from repro.pim.kernels.topk_sort import run_topk_sort
from repro.pim.microcode import (
    MicroMachine,
    run_dc_micro,
    run_lc_micro,
    run_rc_micro,
)

#: Small deterministic shapes every claim is evaluated at. Two shapes
#: per kernel guard against formulas that happen to agree at one point.
CANONICAL_SHAPES: Dict[str, Tuple[KernelShape, ...]] = {
    "RC": (
        KernelShape(g=1, d=16),
        KernelShape(g=3, d=8),
    ),
    "LC": (
        KernelShape(g=1, d=16, m=4, cb=8, dsub=4),
        KernelShape(g=2, d=8, m=2, cb=4, dsub=4),
    ),
    "DC": (
        KernelShape(g=1, d=16, m=4, cb=8, dsub=4, n=12),
        KernelShape(g=2, d=8, m=2, cb=4, dsub=4, n=5),
    ),
    "CL": (
        KernelShape(g=2, d=16, n=12, k=3),
        KernelShape(g=1, d=8, n=5, k=2),
    ),
    "TS": (
        KernelShape(g=2, n=12, k=3),
        KernelShape(g=1, n=5, k=2),
    ),
}

# Kernels with hand-written micro programs (measured ground truth).
_MICRO_KERNELS = ("RC", "LC", "DC")


# -------------------------------------------------- canonical operands
def _pattern(n: int, mult: int, mod: int) -> np.ndarray:
    """Deterministic pseudo-varied integers (no RNG: lint must not
    depend on random state, and the analyzer itself obeys the
    rng-bypass rule it enforces)."""
    return (np.arange(n, dtype=np.int64) * mult) % mod


def _queries(shape: KernelShape) -> np.ndarray:
    return _pattern(shape.g * shape.d, 7, 251).astype(np.uint8).reshape(
        shape.g, shape.d
    )


def _centroid(shape: KernelShape) -> np.ndarray:
    return _pattern(shape.d, 13, 251).astype(np.uint8)


def _codebooks(shape: KernelShape) -> np.ndarray:
    flat = _pattern(shape.m * shape.cb * shape.dsub, 17, 199) - 99
    return flat.astype(np.int16).reshape(shape.m, shape.cb, shape.dsub)


def _codes(shape: KernelShape) -> np.ndarray:
    flat = _pattern(shape.n * shape.m, 5, shape.cb)
    return flat.astype(np.uint8).reshape(shape.n, shape.m)


def _square_lut(shape: KernelShape) -> Optional[SquareLut]:
    # levels=3 covers the full post-subtraction range: zero misses,
    # matching shape.square_lut_misses = 0.
    return SquareLut.for_bit_width(8, levels=3) if shape.multiplier_less else None


# -------------------------------------------------- measured quantities
def _kernel_cost(kernel: str, shape: KernelShape) -> KernelCost:
    """Run the vectorized kernel at ``shape``; return its KernelCost."""
    if kernel == "RC":
        _, cost = run_residual(_queries(shape), _centroid(shape))
    elif kernel == "LC":
        q = _queries(shape)
        residuals = q.astype(np.int32) - _centroid(shape).astype(np.int32)
        _, cost = run_lut_build(residuals, _codebooks(shape), _square_lut(shape))
    elif kernel == "DC":
        q = _queries(shape)
        residuals = q.astype(np.int32) - _centroid(shape).astype(np.int32)
        luts, _ = run_lut_build(residuals, _codebooks(shape))
        _, cost = run_distance_scan(luts, _codes(shape))
    elif kernel == "CL":
        centroids = (
            _pattern(shape.n * shape.d, 11, 251)
            .astype(np.uint8)
            .reshape(shape.n, shape.d)
        )
        _, cost = run_cluster_locate(
            _queries(shape), centroids, shape.k, _square_lut(shape)
        )
    elif kernel == "TS":
        dists = _pattern(shape.g * shape.n, 23, 997).reshape(shape.g, shape.n)
        ids = np.arange(shape.n, dtype=np.int64)
        _, cost = run_topk_sort(dists, ids, shape.k)
    else:
        raise ValueError(f"no canonical driver for kernel {kernel!r}")
    return cost


def _micro_counts(kernel: str, shape: KernelShape) -> InstructionMix:
    """Instruction counts measured by the micro-interpreter."""
    machine = MicroMachine()
    if kernel == "RC":
        q = _queries(shape).astype(np.int64)
        c = _centroid(shape).astype(np.int64)
        for row in range(shape.g):
            run_rc_micro(machine, q[row], c)
    elif kernel == "LC":
        q = _queries(shape)
        residuals = (q.astype(np.int32) - _centroid(shape).astype(np.int32)).astype(
            np.int64
        )
        books = _codebooks(shape)
        sq = _square_lut(shape)
        for row in range(shape.g):
            run_lc_micro(machine, residuals[row], books, sq)
    elif kernel == "DC":
        q = _queries(shape)
        residuals = q.astype(np.int32) - _centroid(shape).astype(np.int32)
        luts, _ = run_lut_build(residuals, _codebooks(shape))
        codes = _codes(shape)
        for row in range(shape.g):
            run_dc_micro(machine, luts[row], codes)
    else:
        raise ValueError(f"kernel {kernel!r} has no micro program")
    return machine.counts


def _delta_finding(
    kernel: str,
    shape: KernelShape,
    quantity: str,
    source: str,
    deltas: Dict[str, Tuple[float, float]],
) -> Finding:
    detail = ", ".join(
        f"{klass}: claimed {c:g} vs {source} {m:g}"
        for klass, (c, m) in sorted(deltas.items())
    )
    return Finding(
        checker="costs",
        rule=f"{quantity}-drift",
        severity=Severity.ERROR,
        message=(
            f"{kernel} contract {quantity} disagrees with {source} at "
            f"shape g={shape.g} d={shape.d} m={shape.m} cb={shape.cb} "
            f"n={shape.n} k={shape.k} "
            f"(multiplier_less={shape.multiplier_less}): {detail}"
        ),
        data={
            "kernel": kernel,
            "quantity": quantity,
            "source": source,
            "deltas": {k: list(v) for k, v in deltas.items()},
            "shape": {
                "g": shape.g, "d": shape.d, "m": shape.m, "cb": shape.cb,
                "n": shape.n, "k": shape.k,
                "multiplier_less": shape.multiplier_less,
            },
        },
    )


def check_contract(
    contract: ResourceContract,
    shapes: Optional[Tuple[KernelShape, ...]] = None,
) -> List[Finding]:
    """Cross-check one contract at its canonical shapes.

    Multiplier-sensitive kernels (LC, CL) are checked in both the
    software-multiply and square-LUT variants.
    """
    kernel = contract.kernel
    if shapes is None:
        if kernel not in CANONICAL_SHAPES:
            return [
                Finding(
                    checker="costs",
                    rule="unknown-kernel",
                    severity=Severity.ERROR,
                    message=(
                        f"contract kernel {kernel!r} has no canonical shapes; "
                        f"known kernels: {sorted(CANONICAL_SHAPES)}"
                    ),
                    data={"kernel": kernel},
                )
            ]
        shapes = CANONICAL_SHAPES[kernel]

    variants = (True, False) if kernel in ("LC", "CL") else (True,)
    findings: List[Finding] = []
    for base in shapes:
        for multiplier_less in variants:
            shape = base.replace(multiplier_less=multiplier_less)
            claimed_mix = contract.instruction_mix(shape)
            claimed_traffic = contract.memory_traffic(shape)

            cost = _kernel_cost(kernel, shape)
            d = mix_delta(claimed_mix, cost.instructions)
            if d:
                findings.append(
                    _delta_finding(kernel, shape, "instruction-mix", "kernel", d)
                )
            d = traffic_delta(claimed_traffic, cost.traffic)
            if d:
                findings.append(
                    _delta_finding(kernel, shape, "memory-traffic", "kernel", d)
                )

            if kernel in _MICRO_KERNELS:
                measured = _micro_counts(kernel, shape)
                d = mix_delta(claimed_mix, measured)
                if d:
                    findings.append(
                        _delta_finding(
                            kernel, shape, "instruction-mix", "microcode", d
                        )
                    )
    return findings


def check_builtin_contracts() -> List[Finding]:
    """Cross-check every kernel's declared contract."""
    findings: List[Finding] = []
    for contract in KERNEL_CONTRACTS.values():
        findings += check_contract(contract)
    return findings


def check_contract_module(module_spec: str) -> List[Finding]:
    """Check an external contract module (dotted name or ``.py`` path).

    The module must define ``CONTRACT`` (a :class:`ResourceContract`);
    it may define ``CANONICAL_SHAPES`` (a tuple of
    :class:`KernelShape`) to override the evaluation points.
    """
    try:
        if module_spec.endswith(".py"):
            spec = importlib.util.spec_from_file_location(
                f"_contract_module_{abs(hash(module_spec))}", module_spec
            )
            if spec is None or spec.loader is None:
                raise ImportError(f"cannot load {module_spec!r}")
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        else:
            module = importlib.import_module(module_spec)
    except Exception as exc:  # surfaced as a finding, not a crash
        return [
            Finding(
                checker="costs",
                rule="module-load-error",
                severity=Severity.ERROR,
                message=f"cannot import contract module {module_spec!r}: {exc}",
                file=module_spec if module_spec.endswith(".py") else None,
                data={"module": module_spec},
            )
        ]
    contract = getattr(module, "CONTRACT", None)
    if not isinstance(contract, ResourceContract):
        return [
            Finding(
                checker="costs",
                rule="missing-contract",
                severity=Severity.ERROR,
                message=(
                    f"module {module_spec!r} does not define a "
                    f"ResourceContract named CONTRACT"
                ),
                data={"module": module_spec},
            )
        ]
    shapes = getattr(module, "CANONICAL_SHAPES", None)
    return check_contract(contract, tuple(shapes) if shapes else None)
