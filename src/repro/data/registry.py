"""Named dataset presets used across examples, tests, and benchmarks.

``load_dataset("sift-like-200k", seed=0)`` is the one-liner every
benchmark starts from. Presets pin the generator parameters so that
EXPERIMENTS.md numbers are reproducible bit-for-bit from the seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.data.dataset import Dataset
from repro.data.ground_truth import attach_ground_truth
from repro.data.queries import make_query_workload
from repro.data.synthetic import (
    SyntheticSpec,
    deep_like_spec,
    make_clustered_dataset,
    sift_like_spec,
)

_PRESETS: Dict[str, Callable[..., Dataset]] = {}


def register_preset(name: str):
    """Decorator registering a dataset factory under ``name``."""

    def deco(fn: Callable[..., Dataset]):
        if name in _PRESETS:
            raise ValueError(f"preset {name!r} already registered")
        _PRESETS[name] = fn
        return fn

    return deco


def list_presets() -> list:
    """Names of all registered presets."""
    return sorted(_PRESETS)


def load_dataset(
    name: str,
    *,
    seed=0,
    num_queries: Optional[int] = None,
    ground_truth_k: int = 0,
) -> Dataset:
    """Build a preset dataset.

    Parameters
    ----------
    num_queries: override the preset's query count.
    ground_truth_k: if > 0, compute exact top-k ground truth (costs a
        brute-force pass; benchmarks cache the result).
    """
    if name not in _PRESETS:
        raise KeyError(f"unknown preset {name!r}; known: {list_presets()}")
    ds = _PRESETS[name](seed=seed, num_queries=num_queries)
    if ground_truth_k > 0:
        attach_ground_truth(ds, k=ground_truth_k)
    return ds


def _make(spec: SyntheticSpec, name, seed, num_queries, default_q, skew=1.0):
    nq = default_q if num_queries is None else num_queries
    ds = make_clustered_dataset(spec, seed=seed, name=name)
    wl = make_query_workload(
        ds,
        num_queries=nq,
        batch_size=max(1, nq // 8),
        zipf_skew=skew,
        noise_scale=5.0,
        seed=None if seed is None else seed + 1,
    )
    ds.queries = wl.queries
    ds.metadata["workload_batches"] = wl.batch_sizes
    return ds


@register_preset("sift-like-20k")
def _sift20k(seed=0, num_queries=None) -> Dataset:
    """Small smoke-test corpus: 20k x 128 uint8."""
    return _make(sift_like_spec(20_000, 64), "sift-like-20k", seed, num_queries, 200)


@register_preset("sift-like-20k-skewed")
def _sift20k_skewed(seed=0, num_queries=None) -> Dataset:
    """The 20k corpus under a heavily skewed query workload.

    ``zipf_skew=2.5`` concentrates queries on a few hot clusters, so
    per-query difficulty varies widely — the regime where adaptive
    probing (``benchmarks/bench_adaptive.py``) pays off: easy queries
    terminate after one or two probes while hard ones keep the full
    budget.
    """
    return _make(
        sift_like_spec(20_000, 64),
        "sift-like-20k-skewed",
        seed,
        num_queries,
        200,
        skew=2.5,
    )


@register_preset("sift-like-100k")
def _sift100k(seed=0, num_queries=None) -> Dataset:
    """Mid-size corpus for tests: 100k x 128 uint8."""
    return _make(sift_like_spec(100_000, 256), "sift-like-100k", seed, num_queries, 500)


@register_preset("sift-like-200k")
def _sift200k(seed=0, num_queries=None) -> Dataset:
    """Benchmark corpus standing in for SIFT100M: 200k x 128 uint8."""
    return _make(sift_like_spec(200_000, 512), "sift-like-200k", seed, num_queries, 1000)


@register_preset("sift-like-400k")
def _sift400k(seed=0, num_queries=None) -> Dataset:
    """Benchmark corpus standing in for SIFT100M: 400k x 128 uint8.

    128 natural components so that the benchmark nlist sweep
    (256..2048) spans 2..16 k-means cells per component — the regime
    where recall responds to nprobe (see DESIGN.md §1, dataset row).
    """
    return _make(sift_like_spec(400_000, 128), "sift-like-400k", seed, num_queries, 1000)


@register_preset("deep-like-400k")
def _deep400k(seed=0, num_queries=None) -> Dataset:
    """Benchmark corpus standing in for DEEP100M: 400k x 96 uint8."""
    return _make(deep_like_spec(400_000, 128), "deep-like-400k", seed, num_queries, 1000)


@register_preset("deep-like-20k")
def _deep20k(seed=0, num_queries=None) -> Dataset:
    """Small smoke-test corpus: 20k x 96 uint8."""
    return _make(deep_like_spec(20_000, 64), "deep-like-20k", seed, num_queries, 200)


@register_preset("deep-like-200k")
def _deep200k(seed=0, num_queries=None) -> Dataset:
    """Benchmark corpus standing in for DEEP100M: 200k x 96 uint8."""
    return _make(deep_like_spec(200_000, 512), "deep-like-200k", seed, num_queries, 1000)
