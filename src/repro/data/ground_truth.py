"""Exact top-k ground truth by blocked brute force.

Used to score recall@k for every experiment. Blocked over both queries
and base vectors so memory stays bounded at
``block_q * block_n * 8`` bytes regardless of corpus size.
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import l2_sq_blocked
from repro.utils import check_2d, check_same_dim


def exact_topk(
    base: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    block_q: int = 256,
    block_n: int = 65536,
    return_distances: bool = False,
):
    """Exact k nearest neighbors under squared-L2 distance.

    Returns ``(q, k)`` int64 indices sorted by ascending distance, and
    optionally the matching ``(q, k)`` float64 squared distances.
    """
    base = check_2d(base, "base")
    queries = check_2d(queries, "queries")
    check_same_dim(base, queries, "base", "queries")
    n = base.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    nq = queries.shape[0]
    out_idx = np.empty((nq, k), dtype=np.int64)
    out_dist = np.empty((nq, k), dtype=np.float64)

    for q0 in range(0, nq, block_q):
        q1 = min(q0 + block_q, nq)
        qblk = queries[q0:q1]
        # Running top-k across base blocks: keep candidate pool of size
        # k per query, merge each block into it.
        best_d = np.full((q1 - q0, k), np.inf)
        best_i = np.full((q1 - q0, k), -1, dtype=np.int64)
        for n0 in range(0, n, block_n):
            n1 = min(n0 + block_n, n)
            d = l2_sq_blocked(qblk, base[n0:n1])
            m = min(k, n1 - n0)
            part = np.argpartition(d, m - 1, axis=1)[:, :m]
            pd = np.take_along_axis(d, part, axis=1)
            # Merge pools.
            cand_d = np.concatenate([best_d, pd], axis=1)
            cand_i = np.concatenate(
                [best_i, part.astype(np.int64) + n0], axis=1
            )
            sel = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
            best_d = np.take_along_axis(cand_d, sel, axis=1)
            best_i = np.take_along_axis(cand_i, sel, axis=1)
        order = np.argsort(best_d, axis=1, kind="stable")
        out_dist[q0:q1] = np.take_along_axis(best_d, order, axis=1)
        out_idx[q0:q1] = np.take_along_axis(best_i, order, axis=1)

    if return_distances:
        return out_idx, out_dist
    return out_idx


def attach_ground_truth(dataset, k: int = 100, **kwargs):
    """Compute and attach exact ground truth to a Dataset (in place)."""
    if dataset.queries is None:
        raise ValueError("dataset has no queries")
    dataset.ground_truth = exact_topk(dataset.base, dataset.queries, k, **kwargs)
    return dataset
