"""Dataset substrate.

The paper evaluates on SIFT100M / DEEP100M (100 M base vectors extracted
from SIFT1B / DEEP1B, quantized to uint8). Those corpora are multi-GB
downloads and are not available offline, so this package provides:

* :mod:`repro.data.synthetic` — Gaussian-mixture clustered vector
  corpora with SIFT-like (d=128) and DEEP-like (d=96) presets, uint8
  quantized, whose cluster-size distribution is deliberately skewed the
  way real embedding corpora are (this skew is what drives the paper's
  load-imbalance results).
* :mod:`repro.data.queries` — query workloads drawn near base clusters
  with Zipf-distributed cluster popularity, reproducing the
  hot-cluster access pattern of Figs. 11/12.
* :mod:`repro.data.ground_truth` — exact top-k neighbors by blocked
  brute force, for recall measurement.
* :mod:`repro.data.io_vecs` — readers/writers for the standard
  ``.fvecs/.bvecs/.ivecs`` formats so real SIFT/DEEP slices can be used
  when present.
* :mod:`repro.data.registry` — named presets ("sift-like-200k", ...).
"""

from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticSpec, make_clustered_dataset
from repro.data.queries import QueryWorkload, make_query_workload
from repro.data.ground_truth import exact_topk
from repro.data.registry import load_dataset, list_presets
from repro.data.analysis import (
    AccessStats,
    ClusterSizeStats,
    intrinsic_dimension_estimate,
)

__all__ = [
    "Dataset",
    "SyntheticSpec",
    "make_clustered_dataset",
    "QueryWorkload",
    "make_query_workload",
    "exact_topk",
    "load_dataset",
    "list_presets",
    "AccessStats",
    "ClusterSizeStats",
    "intrinsic_dimension_estimate",
]
