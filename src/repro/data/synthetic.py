"""Synthetic clustered vector corpora (SIFT-like / DEEP-like).

The statistical properties that matter for reproducing the paper:

1. **Clusteredness with a heavy-tailed size distribution** — IVF
   recall/nprobe trade-offs and the paper's load-imbalance results
   (Observation 1: "unbalanced cluster size") require vectors that
   concentrate around natural centers of very different popularity. We
   sample from a Gaussian mixture whose component weights are
   log-normal.
2. **Low intrinsic dimensionality** — real embeddings (SIFT, DEEP)
   occupy a low-dimensional manifold inside R^d; this is what makes
   product quantization effective. Isotropic full-rank noise is the
   *worst case* for PQ and caps recall@10 well below the paper's 0.8
   constraint. Each component therefore carries an ``intrinsic_dim``-
   rank basis; micro-structure and point noise live in that latent
   space.
3. **Two-level hierarchy** — within each component, points gather
   around micro-clusters. Without it, high-dimensional concentration
   makes all within-cluster distances nearly equal and the true top-k
   is informationless; with it, queries have genuinely close neighbors
   (the realistic neighbor-distance spectrum).
4. **Dimension and dtype** — SIFT is 128-d uint8; DEEP100M is quantized
   to uint8 at 96-d in the paper. Both presets quantize to uint8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils import ensure_rng


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters for the corpus generator.

    Attributes
    ----------
    num_vectors: corpus size ``n``.
    dim: ambient vector dimensionality ``d``.
    num_components: mixture components (natural clusters). Independent
        of any index's ``nlist``; k-means rediscovers structure at its
        own granularity.
    size_skew: sigma of the log-normal component-weight distribution
        (0 → equal sizes; ~1.0 → realistic heavy tail).
    spread: within-component extent relative to inter-component
        spacing (larger → components blur together, harder CL).
    intrinsic_dim: rank of each component's latent basis; ``None``
        falls back to full-rank isotropic noise (pathologically hard
        for PQ — only useful for stress tests).
    micro_per_component: micro-clusters per component.
    micro_spread_ratio: latent-space point noise around a micro center,
        relative to the unit micro-center spread.
    dtype: "uint8" (paper's setting) or "float32".
    value_range: (low, high) of the quantized uint8 values.
    """

    num_vectors: int
    dim: int
    num_components: int = 256
    size_skew: float = 1.0
    spread: float = 1.2
    intrinsic_dim: Optional[int] = 12
    micro_per_component: int = 16
    micro_spread_ratio: float = 0.5
    dtype: str = "uint8"
    value_range: tuple = (0, 218)

    def __post_init__(self) -> None:
        if self.num_vectors <= 0:
            raise ValueError("num_vectors must be > 0")
        if self.dim <= 0:
            raise ValueError("dim must be > 0")
        if self.num_components <= 0:
            raise ValueError("num_components must be > 0")
        if self.dtype not in ("uint8", "float32"):
            raise ValueError(f"dtype must be uint8 or float32, got {self.dtype}")
        if self.intrinsic_dim is not None and self.intrinsic_dim < 1:
            raise ValueError(
                f"intrinsic_dim must be >= 1 or None, got {self.intrinsic_dim}"
            )
        if self.micro_per_component < 1:
            raise ValueError("micro_per_component must be >= 1")
        if self.micro_spread_ratio <= 0:
            raise ValueError("micro_spread_ratio must be > 0")
        if self.size_skew < 0:
            raise ValueError("size_skew must be >= 0")


def sift_like_spec(num_vectors: int, num_components: int = 256) -> SyntheticSpec:
    """Preset mirroring SIFT100M's shape: d=128, uint8, 0..218 range."""
    return SyntheticSpec(
        num_vectors=num_vectors, dim=128, num_components=num_components
    )


def deep_like_spec(num_vectors: int, num_components: int = 256) -> SyntheticSpec:
    """Preset mirroring DEEP100M-as-used: d=96, quantized to uint8.

    DEEP embeddings are less cluster-separable and slightly lower-rank
    than SIFT descriptors.
    """
    return SyntheticSpec(
        num_vectors=num_vectors,
        dim=96,
        num_components=num_components,
        spread=1.4,
        intrinsic_dim=10,
    )


@dataclass(frozen=True)
class _Geometry:
    """Frozen component geometry shared by base and query draws."""

    weights: np.ndarray  # (K,)
    means: np.ndarray  # (K, D)
    scales: np.ndarray  # (K,)
    basis: Optional[np.ndarray]  # (K, r, D) unit rows, or None
    micro_centers: np.ndarray  # (K, micro, r-or-D) latent micro centers


def _component_weights(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.size_skew <= 0:
        return np.full(spec.num_components, 1.0 / spec.num_components)
    w = rng.lognormal(mean=0.0, sigma=spec.size_skew, size=spec.num_components)
    return w / w.sum()


def _sample_geometry(spec: SyntheticSpec, rng: np.random.Generator) -> _Geometry:
    k = spec.num_components
    means = rng.uniform(0.0, 1.0, size=(k, spec.dim))
    scales = np.full(k, spec.spread / np.cbrt(k))
    if spec.intrinsic_dim is not None:
        r = min(spec.intrinsic_dim, spec.dim)  # clamp for tiny-dim corpora
        basis = rng.standard_normal((k, r, spec.dim))
        basis /= np.linalg.norm(basis, axis=2, keepdims=True)
    else:
        r = spec.dim
        basis = None
    micro = rng.standard_normal((k, spec.micro_per_component, r))
    return _Geometry(
        weights=_component_weights(spec, rng),
        means=means,
        scales=scales,
        basis=basis,
        micro_centers=micro,
    )


def _tilt_weights(weights: np.ndarray, skew: float) -> np.ndarray:
    """Re-weight component popularity: rank-based Zipf tilt."""
    if skew <= 0:
        return weights
    order = np.argsort(-weights)  # hottest component gets rank 1
    ranks = np.empty_like(order)
    ranks[order] = np.arange(1, len(weights) + 1)
    tilted = weights * ranks.astype(np.float64) ** (-skew)
    return tilted / tilted.sum()


def _quantize(spec: SyntheticSpec, x: np.ndarray) -> np.ndarray:
    if spec.dtype == "uint8":
        lo, hi = spec.value_range
        # Fixed affine map: component means live in [0, 1], noise adds
        # a fringe; constant reference bounds (not per-draw min/max)
        # keep base and query draws on the same scale.
        x01 = np.clip((x + 0.25) / 1.5, 0.0, 1.0)
        return np.clip(np.rint(lo + x01 * (hi - lo)), 0, 255).astype(np.uint8)
    return x.astype(np.float32)


def _draw(
    spec: SyntheticSpec,
    geo: _Geometry,
    weights: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> tuple:
    assign = rng.choice(len(weights), size=n, p=weights)
    micro = rng.integers(0, spec.micro_per_component, size=n)
    z = geo.micro_centers[assign, micro] + (
        rng.standard_normal((n, geo.micro_centers.shape[2]))
        * spec.micro_spread_ratio
    )
    if geo.basis is not None:
        offset = np.einsum("nr,nrd->nd", z, geo.basis[assign])
    else:
        offset = z
    x = geo.means[assign] + geo.scales[assign, None] * offset
    return _quantize(spec, x), assign


def make_clustered_dataset(
    spec: SyntheticSpec,
    *,
    num_queries: int = 0,
    query_skew: float = 0.0,
    seed=None,
    name: str = "synthetic",
) -> Dataset:
    """Generate a clustered corpus (and optionally matching queries).

    Queries, when requested, are fresh mixture draws with component
    popularity re-weighted by a Zipf tilt of exponent ``query_skew``.
    For realistic *retrieval* workloads (seeded near base points, with
    batch structure and hot-set drift) prefer
    :func:`repro.data.queries.make_query_workload`.
    """
    rng = ensure_rng(seed)
    geo = _sample_geometry(spec, rng)
    base, base_assign = _draw(spec, geo, geo.weights, spec.num_vectors, rng)

    queries = None
    if num_queries > 0:
        qw = _tilt_weights(geo.weights, query_skew)
        queries, _ = _draw(spec, geo, qw, num_queries, rng)

    return Dataset(
        name=name,
        base=base,
        queries=queries,
        metadata={
            "spec": spec,
            "component_weights": geo.weights,
            "component_assignments": base_assign,
            "query_skew": query_skew,
        },
    )
