"""Skewed query workloads.

The paper's load-imbalance analysis (§IV-B, Figs. 11/12) rests on three
observations about how queries land on clusters:

* cluster sizes are unbalanced,
* several queries in one batch hit the same cluster,
* cluster access frequency is non-uniform (some clusters are "hot").

This module synthesizes query streams with controllable versions of all
three: a Zipf exponent for hot-cluster concentration, batch structure,
and an optional *drift* that moves the hot set between batches (which is
what makes the paper's inter-batch "filter" useful — a DPU that was slow
in one batch is not necessarily slow in the next).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.data.dataset import Dataset
from repro.utils import ensure_rng


@dataclass
class QueryWorkload:
    """A batched query stream.

    Attributes
    ----------
    queries: ``(q, d)`` array of all queries, batch-major.
    batch_sizes: number of queries per batch (sums to ``q``).
    hot_components: per-batch array of component ids that were favored
        when sampling (diagnostic metadata; may be empty).
    """

    queries: np.ndarray
    batch_sizes: List[int]
    hot_components: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if sum(self.batch_sizes) != len(self.queries):
            raise ValueError(
                f"batch_sizes sum {sum(self.batch_sizes)} != "
                f"query count {len(self.queries)}"
            )

    @property
    def num_batches(self) -> int:
        return len(self.batch_sizes)

    def batches(self):
        """Yield ``(batch_index, query_array_view)`` pairs."""
        off = 0
        for i, b in enumerate(self.batch_sizes):
            yield i, self.queries[off : off + b]
            off += b


def make_query_workload(
    dataset: Dataset,
    *,
    num_queries: int,
    batch_size: int,
    zipf_skew: float = 1.0,
    hot_fraction: float = 0.1,
    drift: float = 0.0,
    noise_scale: float = 1.0,
    mode: str = "interpolate",
    interpolate_range: tuple = (0.4, 0.6),
    seed=None,
) -> QueryWorkload:
    """Sample a batched, skewed query workload near the dataset's points.

    Two generation modes:

    * ``"interpolate"`` (default) — each query is the α-blend of two
      base points from the same component (α ~ U over
      ``interpolate_range``) plus small jitter. Midpoint queries sit
      *between* local neighborhoods, so their true top-k straddles IVF
      cell boundaries; this is what gives the realistic, slowly-rising
      recall-vs-nprobe curve (a plain jittered base point has its whole
      neighborhood inside one cell and recall saturates at nprobe≈2).
    * ``"jitter"`` — a base point plus Gaussian noise of
      ``noise_scale``; easier workloads, useful for tests.

    Seed points are drawn so that a ``hot_fraction`` of the generator's
    natural components receives Zipf-concentrated traffic (the paper's
    hot-cluster skew); ``drift`` in [0, 1] resamples that hot set
    between batches with the given probability.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be > 0")
    if batch_size <= 0:
        raise ValueError("batch_size must be > 0")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    if mode not in ("interpolate", "jitter"):
        raise ValueError(f"mode must be 'interpolate' or 'jitter', got {mode!r}")
    lo_a, hi_a = interpolate_range
    if not 0.0 <= lo_a <= hi_a <= 1.0:
        raise ValueError(f"interpolate_range must satisfy 0<=lo<=hi<=1, got {interpolate_range}")
    rng = ensure_rng(seed)

    assign = dataset.metadata.get("component_assignments")
    if assign is None:
        # Fall back: treat each point as its own "component".
        assign = np.arange(dataset.num_base)
    assign = np.asarray(assign)
    components = np.unique(assign)
    n_hot = max(1, int(round(hot_fraction * len(components))))

    # Index base points by component for fast sampling.
    order = np.argsort(assign, kind="stable")
    sorted_assign = assign[order]
    starts = np.searchsorted(sorted_assign, components, side="left")
    ends = np.searchsorted(sorted_assign, components, side="right")

    def pick_hot() -> np.ndarray:
        return rng.choice(components, size=n_hot, replace=False)

    hot = pick_hot()
    batch_sizes: List[int] = []
    hot_log: List[np.ndarray] = []
    chunks: List[np.ndarray] = []

    remaining = num_queries
    while remaining > 0:
        b = min(batch_size, remaining)
        remaining -= b
        if batch_sizes and rng.uniform() < drift:
            hot = pick_hot()
        hot_log.append(hot.copy())
        batch_sizes.append(b)

        # Zipf ranks over the hot set; cold components share leftover mass.
        ranks = np.arange(1, n_hot + 1, dtype=np.float64)
        hot_w = ranks ** (-zipf_skew) if zipf_skew > 0 else np.ones(n_hot)
        hot_w = hot_w / hot_w.sum()
        comp_choice = rng.choice(len(hot), size=b, p=hot_w)
        comp_ids = hot[comp_choice]

        # Map each chosen component to random member base points.
        def draw_member(c) -> int:
            ci = np.searchsorted(components, c)
            lo, hi = starts[ci], ends[ci]
            if hi <= lo:  # empty component: any point
                return int(rng.integers(0, dataset.num_base))
            return int(order[rng.integers(lo, hi)])

        idx = np.array([draw_member(c) for c in comp_ids], dtype=np.int64)
        pts = dataset.base[idx].astype(np.float64)
        if mode == "interpolate":
            idx2 = np.array([draw_member(c) for c in comp_ids], dtype=np.int64)
            alpha = rng.uniform(lo_a, hi_a, size=(b, 1))
            pts = alpha * pts + (1.0 - alpha) * dataset.base[idx2].astype(np.float64)
        jitter = rng.standard_normal(pts.shape) * noise_scale
        q = pts + jitter
        if dataset.base.dtype == np.uint8:
            q = np.clip(np.rint(q), 0, 255).astype(np.uint8)
        else:
            q = q.astype(dataset.base.dtype)
        chunks.append(q)

    return QueryWorkload(
        queries=np.concatenate(chunks, axis=0),
        batch_sizes=batch_sizes,
        hot_components=hot_log,
    )
