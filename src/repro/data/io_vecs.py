"""Readers/writers for the TEXMEX ``.fvecs / .bvecs / .ivecs`` formats.

These are the on-disk formats of SIFT1B/DEEP1B and friends: each vector
is stored as a little-endian int32 dimension header followed by ``d``
payload elements (float32 / uint8 / int32 respectively). Supported so a
user who *does* have real SIFT/DEEP slices can feed them straight into
the engine; the repository's own experiments use synthetic data.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

_PAYLOAD = {
    ".fvecs": np.dtype("<f4"),
    ".bvecs": np.dtype("u1"),
    ".ivecs": np.dtype("<i4"),
}


def _payload_dtype(path: str) -> np.dtype:
    ext = os.path.splitext(path)[1].lower()
    if ext not in _PAYLOAD:
        raise ValueError(f"unsupported vecs extension {ext!r} (want .fvecs/.bvecs/.ivecs)")
    return _PAYLOAD[ext]


def read_vecs(
    path: str, *, count: Optional[int] = None, offset: int = 0
) -> np.ndarray:
    """Read vectors from a ``.fvecs/.bvecs/.ivecs`` file.

    Parameters
    ----------
    count: maximum number of vectors to read (None → all).
    offset: number of leading vectors to skip.
    """
    dtype = _payload_dtype(path)
    filesize = os.path.getsize(path)
    if filesize == 0:
        return np.empty((0, 0), dtype=dtype)
    with open(path, "rb") as f:
        header = np.fromfile(f, dtype="<i4", count=1)
        if len(header) == 0:
            return np.empty((0, 0), dtype=dtype)
        d = int(header[0])
        if d <= 0:
            raise ValueError(f"corrupt vecs file {path!r}: dimension {d}")
    record = 4 + d * dtype.itemsize
    total, rem = divmod(filesize, record)
    if rem:
        raise ValueError(
            f"corrupt vecs file {path!r}: size {filesize} not a multiple of "
            f"record size {record}"
        )
    if offset < 0 or offset > total:
        raise ValueError(f"offset {offset} out of range [0, {total}]")
    n = total - offset if count is None else min(count, total - offset)
    raw = np.fromfile(path, dtype=np.uint8, count=n * record, offset=offset * record)
    raw = raw.reshape(n, record)
    dims = raw[:, :4].view("<i4").ravel()
    if not np.all(dims == d):
        raise ValueError(f"corrupt vecs file {path!r}: inconsistent dimensions")
    return raw[:, 4:].copy().view(dtype).reshape(n, d)


def iter_vecs(path: str, chunk: int = 65536):
    """Stream a vecs file in chunks of up to ``chunk`` vectors.

    Lets billion-scale files (SIFT1B's base file is ~132 GB) feed
    index construction without ever materializing the corpus:

        for block in iter_vecs("bigann_base.bvecs", chunk=1_000_000):
            process(block)
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    offset = 0
    while True:
        block = read_vecs(path, count=chunk, offset=offset)
        if block.size == 0:
            return
        yield block
        if len(block) < chunk:
            return
        offset += len(block)


def write_vecs(path: str, vectors: np.ndarray) -> None:
    """Write a 2-D array in the format implied by the file extension."""
    dtype = _payload_dtype(path)
    vectors = np.ascontiguousarray(vectors, dtype=dtype)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    n, d = vectors.shape
    header = np.full(n, d, dtype="<i4")
    record = np.empty((n, 4 + d * dtype.itemsize), dtype=np.uint8)
    record[:, :4] = header.view(np.uint8).reshape(n, 4)
    record[:, 4:] = vectors.view(np.uint8).reshape(n, d * dtype.itemsize)
    record.tofile(path)
