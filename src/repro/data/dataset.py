"""Dataset container shared by indexes, engines, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils import check_2d


@dataclass
class Dataset:
    """A base corpus plus (optionally) queries and exact ground truth.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"sift-like-200k"``).
    base:
        ``(n, d)`` base vectors. uint8 for SIFT/DEEP-style corpora,
        float32 also accepted by all indexes.
    queries:
        ``(q, d)`` query vectors, or ``None``.
    ground_truth:
        ``(q, k_gt)`` int64 indices of exact nearest neighbors in
        ``base`` (ascending distance), or ``None``.
    metadata:
        Free-form provenance (generator parameters, seed, ...).
    """

    name: str
    base: np.ndarray
    queries: Optional[np.ndarray] = None
    ground_truth: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.base = check_2d(self.base, "base")
        if self.queries is not None:
            self.queries = check_2d(self.queries, "queries")
            if self.queries.shape[1] != self.base.shape[1]:
                raise ValueError(
                    "queries dimension "
                    f"{self.queries.shape[1]} != base dimension {self.base.shape[1]}"
                )
        if self.ground_truth is not None:
            self.ground_truth = check_2d(
                np.asarray(self.ground_truth, dtype=np.int64), "ground_truth"
            )
            if self.queries is None:
                raise ValueError("ground_truth given without queries")
            if self.ground_truth.shape[0] != self.queries.shape[0]:
                raise ValueError(
                    "ground_truth rows "
                    f"{self.ground_truth.shape[0]} != query count {self.queries.shape[0]}"
                )

    @property
    def num_base(self) -> int:
        return self.base.shape[0]

    @property
    def dim(self) -> int:
        return self.base.shape[1]

    @property
    def num_queries(self) -> int:
        return 0 if self.queries is None else self.queries.shape[0]

    def subset_queries(self, n: int) -> "Dataset":
        """Return a view dataset with only the first ``n`` queries."""
        if self.queries is None:
            raise ValueError("dataset has no queries")
        n = min(n, self.num_queries)
        gt = None if self.ground_truth is None else self.ground_truth[:n]
        return Dataset(
            name=self.name,
            base=self.base,
            queries=self.queries[:n],
            ground_truth=gt,
            metadata=dict(self.metadata, query_subset=n),
        )
