"""Dataset and workload characterization.

The paper's load-balancing design rests on three measured properties of
real corpora/workloads (§IV-B Observations 1–3): unbalanced cluster
sizes, repeated same-batch access to single clusters, and skewed
cluster access frequency. This module measures all three on any
dataset/workload pair — used to verify that the synthetic corpora
actually exhibit the paper's preconditions (see
``tests/test_data_analysis.py``) and as a user-facing diagnostic before
choosing layout knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils import check_2d
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ClusterSizeStats:
    """Observation 1 — cluster-size imbalance."""

    mean: float
    std: float
    max: float
    imbalance_factor: float  # n * sum(s^2) / (sum s)^2, 1.0 = even
    gini: float  # 0 = even, ->1 = concentrated

    @classmethod
    def from_sizes(cls, sizes: np.ndarray) -> "ClusterSizeStats":
        s = np.asarray(sizes, dtype=np.float64)
        if s.size == 0 or s.sum() == 0:
            raise ValueError("empty cluster sizes")
        total = s.sum()
        imb = float(len(s) * np.square(s).sum() / total**2)
        sorted_s = np.sort(s)
        n = len(s)
        gini = float(
            (2 * np.arange(1, n + 1) - n - 1).dot(sorted_s) / (n * total)
        )
        return cls(
            mean=float(s.mean()),
            std=float(s.std()),
            max=float(s.max()),
            imbalance_factor=imb,
            gini=gini,
        )


@dataclass(frozen=True)
class AccessStats:
    """Observations 2 & 3 — access frequency skew and batch contention."""

    top1_share: float  # busiest cluster's share of all accesses
    top10pct_share: float  # share of the hottest 10% of clusters
    zipf_exponent: float  # slope of the log-log rank-frequency fit
    mean_batch_contention: float  # avg max same-cluster hits per batch

    @classmethod
    def from_probes(
        cls, probes: np.ndarray, nlist: int, batch_size: Optional[int] = None
    ) -> "AccessStats":
        """``probes``: (q, nprobe) located cluster ids."""
        probes = check_2d(np.asarray(probes), "probes")
        freq = np.bincount(probes.ravel(), minlength=nlist).astype(np.float64)
        total = freq.sum()
        if total == 0:
            raise ValueError("no accesses")
        order = np.sort(freq)[::-1]
        top1 = float(order[0] / total)
        k10 = max(1, nlist // 10)
        top10 = float(order[:k10].sum() / total)

        # Zipf fit over the populated ranks.
        populated = order[order > 0]
        ranks = np.arange(1, len(populated) + 1, dtype=np.float64)
        if len(populated) >= 2:
            slope, _ = np.polyfit(np.log(ranks), np.log(populated), 1)
            zipf = float(-slope)
        else:
            zipf = 0.0

        # Batch contention: within each batch, the busiest cluster's
        # same-batch access count (Observation 2's blocking metric).
        if batch_size is None:
            batch_size = len(probes)
        contentions = []
        for b0 in range(0, len(probes), batch_size):
            batch = probes[b0 : b0 + batch_size].ravel()
            if len(batch):
                contentions.append(np.bincount(batch).max())
        return cls(
            top1_share=top1,
            top10pct_share=top10,
            zipf_exponent=zipf,
            mean_batch_contention=float(np.mean(contentions)),
        )


def intrinsic_dimension_estimate(x: np.ndarray, sample: int = 4096, seed=0) -> float:
    """Participation-ratio intrinsic dimension from the PCA spectrum.

    ``(sum λ)^2 / sum λ^2`` — the effective number of variance
    directions. Real embeddings score far below their ambient dimension
    (the property that makes PQ viable; see
    ``SyntheticSpec.intrinsic_dim``).
    """
    x = check_2d(x, "x").astype(np.float64)
    rng = ensure_rng(seed)
    if len(x) > sample:
        x = x[rng.choice(len(x), size=sample, replace=False)]
    xc = x - x.mean(axis=0)
    cov = xc.T @ xc / max(len(xc) - 1, 1)
    eig = np.linalg.eigvalsh(cov)
    eig = np.clip(eig, 0, None)
    s = eig.sum()
    if s <= 0:
        return 0.0
    return float(s**2 / np.square(eig).sum())
