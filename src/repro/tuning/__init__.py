"""Bayesian-optimization substrate for the DSE (§III-C).

The paper tunes (K, P, C, M, CB) with Bayesian optimization [6]; no BO
library is available offline, so this package implements the pieces
from scratch: a Gaussian-process regressor with an RBF kernel
(:mod:`repro.tuning.gp`), a discrete parameter space with unit-cube
encoding (:mod:`repro.tuning.space`), and a constrained
expected-improvement optimizer (:mod:`repro.tuning.bayesopt`).
"""

from repro.tuning.gp import GaussianProcess, rbf_kernel
from repro.tuning.space import DiscreteSpace
from repro.tuning.bayesopt import ConstrainedBayesOpt, Observation

__all__ = [
    "GaussianProcess",
    "rbf_kernel",
    "DiscreteSpace",
    "ConstrainedBayesOpt",
    "Observation",
]
