"""Minimal Gaussian-process regression (RBF kernel, Cholesky solve).

Just enough GP for constrained Bayesian optimization: fit on a handful
of observations, predict mean and variance at candidate points. The
lengthscale defaults to the median pairwise distance of the training
inputs (the standard heuristic), avoiding hyperparameter optimization
machinery.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.utils import check_2d


def rbf_kernel(
    a: np.ndarray, b: np.ndarray, lengthscale: float, variance: float = 1.0
) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets a and b."""
    a = check_2d(a, "a")
    b = check_2d(b, "b")
    if lengthscale <= 0:
        raise ValueError(f"lengthscale must be > 0, got {lengthscale}")
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    bb = np.einsum("ij,ij->i", b, b)[None, :]
    d2 = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    return variance * np.exp(-0.5 * d2 / (lengthscale**2))


def median_heuristic(x: np.ndarray) -> float:
    """Median pairwise distance; 1.0 when degenerate."""
    x = check_2d(x, "x")
    if x.shape[0] < 2:
        return 1.0
    xx = np.einsum("ij,ij->i", x, x)
    d2 = np.maximum(xx[:, None] + xx[None, :] - 2.0 * (x @ x.T), 0.0)
    upper = d2[np.triu_indices(x.shape[0], k=1)]
    med = float(np.sqrt(np.median(upper)))
    return med if med > 0 else 1.0


class GaussianProcess:
    """GP regressor with RBF kernel and observation noise."""

    def __init__(
        self,
        lengthscale: Optional[float] = None,
        signal_variance: float = 1.0,
        noise: float = 1e-4,
    ) -> None:
        if signal_variance <= 0:
            raise ValueError("signal_variance must be > 0")
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self.lengthscale = lengthscale
        self.signal_variance = signal_variance
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._ls = 1.0

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = check_2d(x, "x").astype(np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.shape[0] != x.shape[0]:
            raise ValueError(f"{x.shape[0]} inputs but {y.shape[0]} targets")
        self._x = x
        self._y_mean = float(y.mean()) if len(y) else 0.0
        yc = y - self._y_mean
        self._ls = (
            self.lengthscale
            if self.lengthscale is not None
            else median_heuristic(x)
        )
        k = rbf_kernel(x, x, self._ls, self.signal_variance)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, yc)
        return self

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at the given points."""
        x = check_2d(x, "x").astype(np.float64)
        if self._x is None or self._alpha is None:
            # Prior: zero mean, unit-ish variance.
            return (
                np.zeros(x.shape[0]),
                np.full(x.shape[0], np.sqrt(self.signal_variance)),
            )
        ks = rbf_kernel(self._x, x, self._ls, self.signal_variance)
        mean = self._y_mean + ks.T @ self._alpha
        v = cho_solve(self._chol, ks)
        var = self.signal_variance - np.einsum("ij,ij->j", ks, v)
        return mean, np.sqrt(np.maximum(var, 1e-12))
