"""Discrete parameter space with unit-cube encoding.

DSE dimensions are small ordered sets (powers of two mostly); the GP
operates on a log-ish [0, 1] embedding of each dimension's index, which
respects the ordinal structure (nlist=2^14 is "between" 2^13 and 2^15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DiscreteSpace:
    """An ordered product of named discrete dimensions."""

    dims: Tuple[Tuple[str, Tuple[float, ...]], ...]

    @classmethod
    def from_dict(cls, spec: Dict[str, Sequence]) -> "DiscreteSpace":
        dims = []
        for name, values in spec.items():
            vals = tuple(float(v) for v in values)
            if len(vals) == 0:
                raise ValueError(f"dimension {name!r} has no values")
            if len(set(vals)) != len(vals):
                raise ValueError(f"dimension {name!r} has duplicate values")
            dims.append((name, tuple(sorted(vals))))
        return cls(dims=tuple(dims))

    @property
    def names(self) -> List[str]:
        return [n for n, _ in self.dims]

    @property
    def size(self) -> int:
        out = 1
        for _, vals in self.dims:
            out *= len(vals)
        return out

    def points(self) -> List[Dict[str, float]]:
        """Enumerate all points (cartesian product)."""
        out: List[Dict[str, float]] = [{}]
        for name, vals in self.dims:
            out = [dict(p, **{name: v}) for p in out for v in vals]
        return out

    def encode(self, point: Dict[str, float]) -> np.ndarray:
        """Map a point to [0, 1]^d by per-dimension rank."""
        coords = []
        for name, vals in self.dims:
            if name not in point:
                raise KeyError(f"point missing dimension {name!r}")
            try:
                rank = vals.index(float(point[name]))
            except ValueError:
                raise ValueError(
                    f"value {point[name]} not in dimension {name!r}: {vals}"
                ) from None
            denom = max(len(vals) - 1, 1)
            coords.append(rank / denom)
        return np.array(coords, dtype=np.float64)

    def encode_many(self, points: Sequence[Dict[str, float]]) -> np.ndarray:
        return np.stack([self.encode(p) for p in points]) if points else np.empty((0, len(self.dims)))
