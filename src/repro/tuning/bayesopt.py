"""Constrained Bayesian optimization over a discrete space.

The DSE problem (paper Eq. 13) is: minimize modeled batch time subject
to ``accuracy(params) >= constraint``, where the *objective* is cheap
(the analytic performance model) but the *constraint* is an expensive
oracle (building an index and measuring recall). The right BO shape is
therefore feasibility-driven:

* a GP models the accuracy surface from measured points;
* the acquisition ranks unevaluated candidates by
  ``(time_best_feasible - time(c))_+ * P(feasible | GP)`` — expected
  feasible improvement with a deterministic objective;
* warm start: a greedy phase walks candidates in ascending modeled
  time and measures until the first feasible one is found (the paper:
  "we find a group within the accuracy constraint through greedy
  search and explore the implicit space from it").

Because the spaces are small (hundreds of points), candidates are
enumerated exhaustively; BO's value is *sample efficiency in oracle
calls*, which ``bench_ablation_dse`` quantifies against random search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np
from scipy.stats import norm

from repro.tuning.gp import GaussianProcess
from repro.tuning.space import DiscreteSpace

Point = Dict[str, float]


@dataclass
class Observation:
    """One oracle evaluation."""

    point: Point
    objective: float  # modeled time (cheap, deterministic)
    accuracy: float  # measured (expensive oracle)
    feasible: bool


@dataclass
class ConstrainedBayesOpt:
    """min objective(x) s.t. accuracy(x) >= threshold, x in space."""

    space: DiscreteSpace
    objective_fn: Callable[[Point], float]
    accuracy_oracle: Callable[[Point], float]
    accuracy_threshold: float
    greedy_budget: int = 8
    seed: Optional[int] = None

    observations: List[Observation] = field(default_factory=list)

    def _evaluate(self, point: Point) -> Observation:
        acc = float(self.accuracy_oracle(point))
        obs = Observation(
            point=point,
            objective=float(self.objective_fn(point)),
            accuracy=acc,
            feasible=acc >= self.accuracy_threshold,
        )
        self.observations.append(obs)
        return obs

    def best(self) -> Optional[Observation]:
        feas = [o for o in self.observations if o.feasible]
        if not feas:
            return None
        return min(feas, key=lambda o: o.objective)

    def _unevaluated(self) -> List[Point]:
        seen = {tuple(sorted(o.point.items())) for o in self.observations}
        return [
            p
            for p in self.space.points()
            if tuple(sorted(p.items())) not in seen
        ]

    def run(self, num_iterations: int) -> Optional[Observation]:
        """Greedy warm start, then constrained-EI iterations.

        ``num_iterations`` counts *oracle calls* (the expensive budget).
        Returns the best feasible observation (None if none found).
        """
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        budget = num_iterations

        # --- greedy phase: cheapest modeled candidates first.
        candidates = sorted(self.space.points(), key=self.objective_fn)
        for point in candidates[: self.greedy_budget]:
            if budget == 0:
                return self.best()
            obs = self._evaluate(point)
            budget -= 1
            if obs.feasible:
                break

        # --- BO phase.
        while budget > 0:
            remaining = self._unevaluated()
            if not remaining:
                break
            x_obs = self.space.encode_many([o.point for o in self.observations])
            y_obs = np.array([o.accuracy for o in self.observations])
            gp = GaussianProcess().fit(x_obs, y_obs)
            x_cand = self.space.encode_many(remaining)
            mean, std = gp.predict(x_cand)
            p_feasible = 1.0 - norm.cdf(
                (self.accuracy_threshold - mean) / np.maximum(std, 1e-9)
            )
            objs = np.array([self.objective_fn(p) for p in remaining])
            best = self.best()
            if best is None:
                # No feasible point yet: chase feasibility, tie-break
                # toward faster configurations.
                score = p_feasible / (1.0 + objs / max(objs.min(), 1e-12))
            else:
                improvement = np.maximum(best.objective - objs, 0.0)
                score = improvement * p_feasible
                if not np.any(score > 0):
                    # Nothing can improve: spend remaining budget on the
                    # most uncertain promising region.
                    score = p_feasible * std
            self._evaluate(remaining[int(np.argmax(score))])
            budget -= 1
        return self.best()
