"""Comparison baselines.

* :mod:`repro.baselines.roofline` — shared roofline timing machinery;
* :mod:`repro.baselines.cpu` — the Faiss-CPU stand-in: a NumPy IVF-PQ
  (from ``repro.ann``) with an analytic 32-thread AVX2 / 80 GB/s
  timing model, the paper's primary comparison target;
* :mod:`repro.baselines.gpu` — the Faiss-GPU (RTX 4090) roofline model
  used by the paper's §V-D scalability comparison.
"""

from repro.baselines.roofline import RooflinePoint, roofline_time
from repro.baselines.cpu import CpuIvfPqBaseline, CpuTimingReport
from repro.baselines.gpu import GpuModel, GpuTimingReport

__all__ = [
    "RooflinePoint",
    "roofline_time",
    "CpuIvfPqBaseline",
    "CpuTimingReport",
    "GpuModel",
    "GpuTimingReport",
]
