"""Roofline timing machinery (paper Fig. 2).

``time = max(work / peak_compute, bytes / peak_bandwidth)`` — the model
behind both the paper's Fig. 2 roofline analysis of Faiss-CPU and its
Eq. 11. A :class:`RooflinePoint` carries the arithmetic intensity and
whether the workload is compute- or memory-bound at a given machine
balance, which the Fig. 2 bench plots for a sweep of ANN
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on a machine's roofline."""

    label: str
    work_ops: float
    bytes_moved: float
    peak_ops_per_s: float
    peak_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.peak_bytes_per_s <= 0:
            raise ValueError("peaks must be > 0")
        if self.work_ops < 0 or self.bytes_moved < 0:
            raise ValueError("work/bytes must be >= 0")

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.work_ops / self.bytes_moved

    @property
    def machine_balance(self) -> float:
        """Ops per byte at which the machine transitions regimes."""
        return self.peak_ops_per_s / self.peak_bytes_per_s

    @property
    def memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.machine_balance

    @property
    def seconds(self) -> float:
        return roofline_time(
            self.work_ops,
            self.bytes_moved,
            self.peak_ops_per_s,
            self.peak_bytes_per_s,
        )

    @property
    def attained_ops_per_s(self) -> float:
        s = self.seconds
        return self.work_ops / s if s > 0 else float("inf")


def roofline_time(
    work_ops: float,
    bytes_moved: float,
    peak_ops_per_s: float,
    peak_bytes_per_s: float,
) -> float:
    """max(compute time, memory time)."""
    if peak_ops_per_s <= 0 or peak_bytes_per_s <= 0:
        raise ValueError("peaks must be > 0")
    return max(work_ops / peak_ops_per_s, bytes_moved / peak_bytes_per_s)
