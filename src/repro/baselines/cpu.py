"""Faiss-CPU stand-in (the paper's primary baseline).

Functionally this wraps the library's own NumPy IVF-PQ
(:class:`~repro.ann.ivfpq.IVFPQIndex`) — the same algorithm Faiss runs.
Timing is analytic: the five-phase op/byte counts from
:class:`~repro.core.perf_model.AnalyticPerfModel` on a Xeon-class
profile (paper platform: Intel Xeon Gold 5218, 32 threads, AVX2,
~80 GB/s DDR4). The paper's own Fig. 2 establishes that Faiss-CPU is
memory-bound at balanced configurations; that emerges from this model,
which is why modeled speedups are trustworthy in shape.

Measured wall-clock of the NumPy implementation is also reported by the
benches (pytest-benchmark) but is *not* used for paper-figure ratios —
NumPy-vs-simulator wall-clock would compare Python overheads, not
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.ann.ivfpq import IVFPQIndex, SearchResult
from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import (
    AnalyticPerfModel,
    HardwareProfile,
    PhaseEstimate,
)
from repro.utils import check_2d


@dataclass
class CpuTimingReport:
    """Modeled CPU timing for one batched search."""

    phases: Dict[str, PhaseEstimate]
    seconds: float
    num_queries: int

    @property
    def throughput_qps(self) -> float:
        return self.num_queries / self.seconds if self.seconds > 0 else float("inf")


class CpuIvfPqBaseline:
    """Functional IVF-PQ search + analytic 32-thread timing."""

    def __init__(
        self,
        index: IVFPQIndex,
        profile: Optional[HardwareProfile] = None,
    ) -> None:
        self.index = index
        self.profile = profile or HardwareProfile.for_cpu()

    @classmethod
    def build(
        cls,
        base: np.ndarray,
        params: IndexParams,
        *,
        profile: Optional[HardwareProfile] = None,
        seed=None,
    ) -> "CpuIvfPqBaseline":
        index = IVFPQIndex.build(
            base,
            nlist=params.nlist,
            num_subspaces=params.num_subspaces,
            codebook_size=params.codebook_size,
            seed=seed,
        )
        return cls(index, profile)

    def search(
        self, queries: np.ndarray, params: IndexParams
    ) -> SearchResult:
        """Functional search (real results, for recall measurement)."""
        queries = check_2d(queries, "queries")
        return self.index.search(queries, k=params.k, nprobe=params.nprobe)

    def model_timing(
        self, num_queries: int, params: IndexParams
    ) -> CpuTimingReport:
        """Modeled batch time: all five phases run on the CPU serially
        per batch (they share the same cores), so times add."""
        shape = DatasetShape(
            num_points=self.index.num_points,
            dim=self.index.dim,
            num_queries=num_queries,
        )
        model = AnalyticPerfModel(shape, self.profile, multiplier_less=False)
        est = model.estimate(params)
        return CpuTimingReport(
            phases=est,
            seconds=sum(e.seconds for e in est.values()),
            num_queries=num_queries,
        )

    def search_with_timing(
        self, queries: np.ndarray, params: IndexParams
    ):
        """Convenience: (results, modeled timing report)."""
        res = self.search(queries, params)
        rep = self.model_timing(queries.shape[0], params)
        return res, rep
