"""Faiss-GPU (RTX 4090) roofline model (paper §V-D).

The paper compares DRIM-ANN's throughput against Faiss on an RTX 4090
(24 GB GDDR6X, ~1 TB/s — "around 40% of the reported bandwidth of
DRAM-PIMs") and finds DRIM-ANN reaches 10–53% of the 4090. The GPU's
abundant FLOPs make ANN search purely bandwidth-bound there, so a
roofline with the 4090's bandwidth reproduces the comparison. The
model also enforces the GPU's defining *capacity* constraint: corpora
beyond device memory are rejected, which is the paper's motivation for
PIM in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile, PhaseEstimate
from repro.pim.isa import IsaCostModel


@dataclass
class GpuTimingReport:
    phases: Dict[str, PhaseEstimate]
    seconds: float
    num_queries: int

    @property
    def throughput_qps(self) -> float:
        return self.num_queries / self.seconds if self.seconds > 0 else float("inf")


@dataclass(frozen=True)
class GpuModel:
    """An RTX-4090-class device."""

    name: str = "rtx4090"
    memory_bytes: int = 24 * 1024**3
    bandwidth_bytes_per_s: float = 1.008e12
    # FP32 ALUs: ~82.6 TFLOPs; ANN integer/gather work attains a
    # fraction of it — the exact value hardly matters because every
    # balanced ANN configuration is bandwidth-bound on this machine.
    peak_ops_per_s: float = 40e12

    def profile(self) -> HardwareProfile:
        return HardwareProfile(
            name=self.name,
            ops_per_s_per_unit=self.peak_ops_per_s,
            units=1,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            isa=IsaCostModel(mul_cost=1.0, div_cost=1.0),
        )

    def index_bytes(self, shape: DatasetShape, params: IndexParams) -> int:
        """Device footprint: PQ codes + ids + centroids."""
        codes = shape.num_points * params.num_subspaces
        ids = shape.num_points * 8
        cents = params.nlist * shape.dim * 4
        books = params.num_subspaces * params.codebook_size * (
            shape.dim // params.num_subspaces
        ) * 4
        return codes + ids + cents + books

    def fits(self, shape: DatasetShape, params: IndexParams) -> bool:
        return self.index_bytes(shape, params) <= self.memory_bytes

    def model_timing(
        self, shape: DatasetShape, params: IndexParams
    ) -> GpuTimingReport:
        """Modeled batch time; raises if the index exceeds device memory."""
        if not self.fits(shape, params):
            raise MemoryError(
                f"index needs {self.index_bytes(shape, params)} B, "
                f"{self.name} has {self.memory_bytes} B — the capacity "
                "wall the paper's PIM approach avoids"
            )
        model = AnalyticPerfModel(shape, self.profile(), multiplier_less=False)
        est = model.estimate(params)
        return GpuTimingReport(
            phases=est,
            seconds=sum(e.seconds for e in est.values()),
            num_queries=shape.num_queries,
        )
