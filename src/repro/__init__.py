"""DRIM-ANN reproduction: an ANN search engine on (simulated) DRAM-PIMs.

Reproduces *DRIM-ANN: An Approximate Nearest Neighbor Search Engine
based on Commercial DRAM-PIMs* (SC 2025) in pure Python. The paper's
UPMEM hardware is substituted by a functional + analytic-timing
simulator (see DESIGN.md §1 for the substitution table); everything
else — the IVF-PQ engine, multiplier-less LUT conversion, performance
model, Bayesian-optimization DSE, layout optimizer, runtime scheduler —
is implemented in full.

Quickstart::

    from repro import DrimAnnEngine, EngineConfig, IndexParams, load_dataset

    ds = load_dataset("sift-like-20k", seed=0, ground_truth_k=10)
    config = EngineConfig(
        index=IndexParams(nlist=256, nprobe=8, k=10, num_subspaces=32)
    )
    engine = DrimAnnEngine.from_config(ds.base, config, seed=0)
    result, timing = engine.search(ds.queries)
    print(timing.summary())
"""

from repro.ann import (
    FlatIndex,
    IVFIndex,
    IVFPQIndex,
    OPQ,
    ProductQuantizer,
    SearchResult,
    recall_at_k,
)
from repro.baselines import CpuIvfPqBaseline, GpuModel
from repro.core import (
    AnalyticPerfModel,
    DatasetShape,
    DesignSpaceExplorer,
    DrimAnnEngine,
    EngineConfig,
    HardwareProfile,
    IndexParams,
    LayoutConfig,
    SearchOutcome,
    SearchParams,
    ServingOutcome,
    SquareLut,
    TimingBreakdown,
)
from repro.data import Dataset, load_dataset, list_presets, make_query_workload
from repro.obs import (
    EngineObserver,
    MetricsRegistry,
    MetricsSnapshot,
    ObsConfig,
    PercentileSketch,
)
from repro.pim import EnergyModel, PimSystem, PimSystemConfig

__version__ = "1.0.0"

__all__ = [
    "FlatIndex",
    "IVFIndex",
    "IVFPQIndex",
    "OPQ",
    "ProductQuantizer",
    "SearchResult",
    "recall_at_k",
    "CpuIvfPqBaseline",
    "GpuModel",
    "AnalyticPerfModel",
    "DatasetShape",
    "DesignSpaceExplorer",
    "DrimAnnEngine",
    "EngineConfig",
    "HardwareProfile",
    "IndexParams",
    "LayoutConfig",
    "SearchOutcome",
    "SearchParams",
    "ServingOutcome",
    "SquareLut",
    "TimingBreakdown",
    "Dataset",
    "load_dataset",
    "list_presets",
    "make_query_workload",
    "EngineObserver",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsConfig",
    "PercentileSketch",
    "EnergyModel",
    "PimSystem",
    "PimSystemConfig",
    "__version__",
]
