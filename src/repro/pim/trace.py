"""Per-DPU execution tracing.

The paper's Fig. 5 explains load balancing with execution traces: which
DPU ran which (query, cluster) task's kernels, and for how long. This
module records exactly that from the simulator — every kernel execution
as a ``TraceEvent`` on its DPU's cycle timeline — and exports the
standard Chrome trace-event JSON (load ``chrome://tracing`` or
https://ui.perfetto.dev and drop the file) so imbalance is visible as
ragged row ends.

Usage::

    tracer = Tracer()
    system = PimSystem(config, tracer=tracer)
    ... run batches ...
    tracer.export_chrome_trace("trace.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: First tid reserved for named host tracks (see :meth:`Tracer.host_track`).
#: Real DPU ids live far below this, so the two ranges never collide.
HOST_TRACK_BASE = 1_000_000


@dataclass(frozen=True)
class TraceEvent:
    """One kernel execution on one DPU."""

    name: str  # kernel name, e.g. "LC"
    dpu_id: int
    start_cycle: float
    end_cycle: float
    batch: int
    detail: str = ""  # e.g. shard key

    def __post_init__(self) -> None:
        if self.dpu_id < 0:
            raise ValueError(f"dpu_id must be >= 0, got {self.dpu_id}")
        if self.end_cycle < self.start_cycle:
            raise ValueError(
                f"event ends ({self.end_cycle}) before it starts ({self.start_cycle})"
            )

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


class Tracer:
    """Collects kernel events; one timeline per DPU, in cycles."""

    def __init__(self, frequency_hz: float = 450e6) -> None:
        self.frequency_hz = frequency_hz
        self.events: List[TraceEvent] = []
        self._batch = 0
        self._track_names: Dict[str, int] = {}

    def record(
        self,
        name: str,
        dpu_id: int,
        start_cycle: float,
        end_cycle: float,
        detail: str = "",
    ) -> None:
        if dpu_id < 0:
            raise ValueError(f"dpu_id must be >= 0, got {dpu_id}")
        self.events.append(
            TraceEvent(
                name=name,
                dpu_id=dpu_id,
                start_cycle=start_cycle,
                end_cycle=end_cycle,
                batch=self._batch,
                detail=detail,
            )
        )

    def next_batch(self) -> int:
        """Advance the batch counter; returns the new batch index."""
        self._batch += 1
        return self._batch

    # ----- host tracks ------------------------------------------------------
    def host_track(self, name: str) -> int:
        """Allocate (or look up) a named host-side timeline.

        Host tracks let span-based timing (see :mod:`repro.obs.spans`)
        share this tracer: spans land on tids at
        :data:`HOST_TRACK_BASE` and up, rendered as their own labeled
        rows in the Chrome trace next to the DPU rows.
        """
        tid = self._track_names.get(name)
        if tid is None:
            tid = HOST_TRACK_BASE + len(self._track_names)
            self._track_names[name] = tid
        return tid

    def host_track_names(self) -> Dict[str, int]:
        """Registered host tracks, name → tid."""
        return dict(self._track_names)

    @staticmethod
    def is_host_track(tid: int) -> bool:
        return tid >= HOST_TRACK_BASE

    @property
    def num_events(self) -> int:
        return len(self.events)

    def events_on(self, dpu_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.dpu_id == dpu_id]

    def busy_cycles_per_dpu(self) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for e in self.events:
            if self.is_host_track(e.dpu_id):
                continue
            out[e.dpu_id] = out.get(e.dpu_id, 0.0) + e.cycles
        return out

    def makespan_cycles(self, batch: Optional[int] = None) -> float:
        """Last event end (optionally within one batch)."""
        evs = (
            self.events
            if batch is None
            else [e for e in self.events if e.batch == batch]
        )
        if not evs:
            return 0.0
        return max(e.end_cycle for e in evs)

    def clear(self) -> None:
        self.events.clear()
        self._batch = 0
        self._track_names.clear()

    # ----- export -----------------------------------------------------------
    def export_chrome_trace(self, path: str) -> None:
        """Write Chrome trace-event JSON (microsecond timestamps).

        Emits ``process_name``/``thread_name`` metadata so Perfetto and
        ``chrome://tracing`` label the rows ("DPU 3") instead of
        showing bare pid/tid integers.
        """
        scale = 1e6 / self.frequency_hz  # cycles -> microseconds
        records = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "PIM system (simulated DPUs)"},
            }
        ]
        if self._track_names:
            records.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "args": {"name": "Host (spans)"},
                }
            )
        track_label = {tid: name for name, tid in self._track_names.items()}
        for tid in sorted(
            {e.dpu_id for e in self.events} | set(track_label)
        ):
            host = self.is_host_track(tid)
            pid = 1 if host else 0
            label = track_label.get(tid, f"host track {tid}") if host else f"DPU {tid}"
            records.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
            records.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        for e in self.events:
            records.append(
                {
                    "name": e.name,
                    "cat": f"batch{e.batch}",
                    "ph": "X",  # complete event
                    "ts": e.start_cycle * scale,
                    "dur": e.cycles * scale,
                    "pid": 1 if self.is_host_track(e.dpu_id) else 0,
                    "tid": e.dpu_id,
                    "args": {"detail": e.detail, "batch": e.batch},
                }
            )
        with open(path, "w") as f:
            json.dump({"traceEvents": records}, f)

    def summary(self) -> str:
        busy = self.busy_cycles_per_dpu()
        if not busy:
            return "empty trace"
        vals = np.array(list(busy.values()))
        return (
            f"{self.num_events} events on {len(busy)} DPUs; "
            f"busy cycles min/mean/max = "
            f"{vals.min():,.0f}/{vals.mean():,.0f}/{vals.max():,.0f} "
            f"(imbalance {vals.max() / max(vals.mean(), 1e-9):.2f}x)"
        )
