"""Host <-> PIM transfer model.

UPMEM's host channel is the system's scarcest resource: 19.2 GB/s DDR4
shared by every DPU — about 0.75% of the combined internal MRAM
bandwidth. The paper's design rule is therefore "never move clusters at
query time"; only queries go down and top-k results come back, and even
those transfers are overlapped with DPU execution.

The model prices three primitives (mirroring the UPMEM SDK):

* ``broadcast`` — same buffer to all DPUs (square LUT, query batch);
* ``scatter`` — distinct buffer per DPU (per-DPU task lists);
* ``gather`` — distinct buffer from each DPU (top-k results).

All three move their aggregate bytes through the shared channel and pay
one launch latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pim.config import TransferConfig


@dataclass
class TransferEvent:
    """One logged host<->PIM transfer."""

    kind: str  # "broadcast" | "scatter" | "gather"
    label: str
    total_bytes: float
    seconds: float


class HostTransferModel:
    """Prices and logs host<->PIM transfers."""

    def __init__(self, config: TransferConfig) -> None:
        self.config = config
        self.events: List[TransferEvent] = []

    def _record(
        self, kind: str, label: str, total_bytes: float, *, channel_parallel: bool
    ) -> float:
        if total_bytes < 0:
            raise ValueError(f"negative transfer size: {total_bytes}")
        bw = (
            self.config.aggregate_bandwidth
            if channel_parallel
            else self.config.host_bandwidth_bytes_per_s
        )
        seconds = total_bytes / bw + self.config.launch_latency_s
        self.events.append(
            TransferEvent(kind=kind, label=label, total_bytes=total_bytes, seconds=seconds)
        )
        return seconds

    def broadcast(self, label: str, bytes_per_dpu: float, num_dpus: int) -> float:
        """Same payload to every DPU.

        UPMEM's xfer engine replicates a broadcast across ranks in
        parallel; each channel carries one full copy for its own DIMMs,
        so the time is one payload at single-channel bandwidth
        (optimistic-but-documented; the alternative of charging
        ``bytes * num_dpus`` would make broadcasts dominate
        unrealistically).
        """
        del num_dpus  # charged once regardless of fan-out
        return self._record("broadcast", label, bytes_per_dpu, channel_parallel=False)

    def scatter(self, label: str, total_bytes: float) -> float:
        """Distinct payload per DPU; bytes split across channels."""
        return self._record("scatter", label, total_bytes, channel_parallel=True)

    def gather(self, label: str, total_bytes: float) -> float:
        """Collect distinct payloads from DPUs; channel-parallel."""
        return self._record("gather", label, total_bytes, channel_parallel=True)

    def timeout(self, label: str, seconds: float) -> float:
        """Charge a timed-out transfer attempt (no bytes delivered).

        The fault layer calls this before re-issuing the real transfer:
        the wasted wall-clock is logged as its own event so traces and
        ledgers show the retry explicitly.
        """
        if seconds < 0:
            raise ValueError(f"timeout seconds must be >= 0, got {seconds}")
        self.events.append(
            TransferEvent(
                kind="timeout", label=label, total_bytes=0.0, seconds=seconds
            )
        )
        return seconds

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    @property
    def total_bytes(self) -> float:
        return sum(e.total_bytes for e in self.events)

    def reset(self) -> None:
        self.events.clear()
