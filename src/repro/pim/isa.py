"""Instruction-cost model of the UPMEM DPU ISA.

The DPU is a 32-bit in-order RISC core with no hardware multiplier or
divider and no vector unit. The paper's key numbers:

* add/sub/logic/compare/load-from-WRAM: 1 cycle each (pipelined);
* 32-bit multiplication: ~32 cycles (software ``mul_step`` sequence);
* division: modeled at 64 cycles.

Kernels report an :class:`InstructionMix` (counts per class);
:class:`IsaCostModel` folds it into issue slots. The multiplier-less
conversion (``repro.core.square_lut``) works precisely by moving counts
out of the ``mul`` bucket and into ``load`` + WRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class InstructionMix:
    """Instruction counts by cost class for one kernel execution."""

    add: float = 0.0  # add/sub/accumulate
    mul: float = 0.0  # 32-bit multiply
    div: float = 0.0  # divide
    compare: float = 0.0  # compare/branch
    load: float = 0.0  # WRAM load (LUT gathers land here)
    store: float = 0.0  # WRAM store
    control: float = 0.0  # loop/address bookkeeping

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))


@dataclass(frozen=True)
class IsaCostModel:
    """Issue-slot cost of each instruction class, in pipeline slots."""

    add_cost: float = 1.0
    mul_cost: float = 32.0  # paper: "multiplication is ~32x an addition"
    div_cost: float = 64.0
    compare_cost: float = 1.0
    load_cost: float = 1.0
    store_cost: float = 1.0
    control_cost: float = 1.0

    def issue_slots(self, mix: InstructionMix) -> float:
        """Total issue slots consumed by a mix (cycles at IPC=1)."""
        return (
            mix.add * self.add_cost
            + mix.mul * self.mul_cost
            + mix.div * self.div_cost
            + mix.compare * self.compare_cost
            + mix.load * self.load_cost
            + mix.store * self.store_cost
            + mix.control * self.control_cost
        )
