"""DPU kernels: functional + cycle-counted implementations of the five
cluster-search phases.

Each kernel returns ``(numeric_result, KernelCost)``. Results are exact
integer math over the DPU-resident data (vectorized NumPy stands in for
the tasklet loops); costs are the instruction mixes and MRAM traffic
those loops would incur on real DPUs, derived operation-by-operation
from the algorithms in the paper's Fig. 1.
"""

from repro.pim.kernels.cluster_locate import run_cluster_locate
from repro.pim.kernels.residual import run_residual
from repro.pim.kernels.lut_build import run_lut_build
from repro.pim.kernels.distance_scan import run_distance_scan
from repro.pim.kernels.topk_sort import run_topk_sort, expected_heap_updates

__all__ = [
    "run_cluster_locate",
    "run_residual",
    "run_lut_build",
    "run_distance_scan",
    "run_topk_sort",
    "expected_heap_updates",
]
