"""DPU kernels: functional + cycle-counted implementations of the five
cluster-search phases.

Each kernel returns ``(numeric_result, KernelCost)``. Results are exact
integer math over the DPU-resident data (vectorized NumPy stands in for
the tasklet loops); costs are the instruction mixes and MRAM traffic
those loops would incur on real DPUs, derived operation-by-operation
from the algorithms in the paper's Fig. 1.

Each kernel module also declares a ``CONTRACT`` — its
:class:`~repro.analysis.contracts.ResourceContract`, the closed-form
claim of the same costs plus WRAM residency and DMA granularity —
collected here in :data:`KERNEL_CONTRACTS` for the static analyzer
(``repro lint``).
"""

from repro.pim.kernels import (
    cluster_locate as _cluster_locate,
    distance_scan as _distance_scan,
    lut_build as _lut_build,
    residual as _residual,
    topk_sort as _topk_sort,
)
from repro.pim.kernels.cluster_locate import run_cluster_locate
from repro.pim.kernels.residual import residual_cost, run_residual
from repro.pim.kernels.lut_build import lut_build_cost, run_lut_build
from repro.pim.kernels.distance_scan import (
    distance_scan_cost,
    run_distance_scan,
    scan_distances,
    scan_distances_stacked,
)
from repro.pim.kernels.topk_sort import (
    expected_heap_updates,
    run_topk_sort,
    topk_rows,
    topk_sort_cost,
)

#: kernel name -> declared resource contract, in pipeline order.
KERNEL_CONTRACTS = {
    mod.CONTRACT.kernel: mod.CONTRACT
    for mod in (_cluster_locate, _residual, _lut_build, _distance_scan, _topk_sort)
}

__all__ = [
    "KERNEL_CONTRACTS",
    "run_cluster_locate",
    "run_residual",
    "run_lut_build",
    "run_distance_scan",
    "run_topk_sort",
    "expected_heap_updates",
    "residual_cost",
    "lut_build_cost",
    "distance_scan_cost",
    "topk_sort_cost",
    "scan_distances",
    "scan_distances_stacked",
    "topk_rows",
]
