"""LC kernel: ADC lookup-table construction.

Per task the tasklet streams the (M, CB, dsub) int16 codebook from MRAM
and, for every (sub-space, entry, dim), computes
``(residual_d - codebook_d)^2`` and accumulates into the (M, CB) LUT in
WRAM. The square is either

* a 32-cycle software multiply (baseline), or
* a 1-slot WRAM load from the broadcast square LUT (§III-A
  multiplier-less conversion) — plus extra random MRAM traffic for the
  rare lookups that fall outside the resident window of a partial
  table (16-bit-operand scenario).

This kernel is where Fig. 10(a)'s 1.93x LC speedup comes from: the mul
bucket empties into the load bucket, but the added WRAM pressure and
unchanged MRAM streaming keep the gain well below the naive 32x.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analysis.contracts import (
    KernelShape,
    ResourceContract,
    WramTerm,
    square_lut_bytes,
)
from repro.core.square_lut import SquareLut
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


def _lc_mix(s: KernelShape) -> InstructionMix:
    per_task_entries = float(s.d * s.cb)  # m * cb * dsub
    mix = InstructionMix(
        add=s.g * 2 * per_task_entries,
        store=float(s.g * s.m * s.cb),
        control=float(s.g * s.m * s.cb),
    )
    if s.multiplier_less:
        mix.load = s.g * per_task_entries
    else:
        mix.mul = s.g * per_task_entries
    return mix


def _lc_traffic(s: KernelShape) -> MemoryTraffic:
    # Codebooks stream as int16: M * CB * dsub * 2 bytes per task.
    traffic = MemoryTraffic(
        sequential_read=float(s.g * s.m * s.cb * s.dsub * 2),
        transactions=float(s.g * s.m),
    )
    if s.multiplier_less:
        traffic.random_read += float(s.square_lut_misses * 4)
        traffic.transactions += float(s.square_lut_misses)
    return traffic


def _lc_wram(s: KernelShape):
    terms = [
        WramTerm("adc_lut", s.adc_lut_bytes),  # built cooperatively
        WramTerm("residual", 4 * s.d),
        WramTerm(
            "codebook_staging",
            min(s.cb * s.dsub * 2, s.dma_burst),
            per_tasklet=True,
        ),
    ]
    if s.multiplier_less:
        terms.append(WramTerm("square_lut", square_lut_bytes(8)))
    return terms


#: Closed-form resource claim checked by ``repro lint``.
CONTRACT = ResourceContract(
    kernel="LC",
    instruction_mix=_lc_mix,
    memory_traffic=_lc_traffic,
    wram_terms=_lc_wram,
    dma_transfers=lambda s: {"codebook_subtable": float(s.cb * s.dsub * 2)},
    notes="square via 32-cycle mul or square-LUT load (§III-A)",
)


def lut_build_cost(
    g: int,
    d: int,
    m: int,
    cb: int,
    codebooks_nbytes: int,
    *,
    multiplier_less: bool,
    misses: int = 0,
) -> KernelCost:
    """LC cost for ``g`` residuals against one ``(m, cb, d/m)`` codebook set.

    ``misses`` counts square-LUT lookups outside the resident window
    (always 0 for the engine's fully-resident 8-bit table). Closed form
    shared by :func:`run_lut_build` and the batched executor, which
    builds LUTs once per unique (query, centroid) pair but charges per
    shard group exactly as the per-group path would.
    """
    per_task_entries = float(d * cb)  # (m * cb * dsub)
    mix = InstructionMix(
        add=g * 2 * per_task_entries,  # subtract + accumulate
        store=float(g * m * cb),  # LUT writes to WRAM
        control=float(g * m * cb),  # entry loop bookkeeping
    )
    traffic = MemoryTraffic(
        sequential_read=float(g * codebooks_nbytes),
        transactions=float(g * m),
    )
    if multiplier_less:
        mix.load = g * per_task_entries
        # Out-of-window lookups fetch the missing entry from MRAM.
        traffic.random_read += float(misses * 4)
        traffic.transactions += float(misses)
    else:
        mix.mul = g * per_task_entries
    return KernelCost(kernel="LC", instructions=mix, traffic=traffic)


def run_lut_build(
    residuals: np.ndarray,
    codebooks: np.ndarray,
    square_lut: Optional[SquareLut] = None,
) -> Tuple[np.ndarray, KernelCost]:
    """Build integer ADC LUTs for ``g`` residuals against one codebook set.

    Parameters
    ----------
    residuals: ``(g, D)`` int32 (RC output).
    codebooks: ``(M, CB, dsub)`` int16.
    square_lut: when given, squares are computed through the table
        (functionally identical; costs differ).

    Returns
    -------
    ``(g, M, CB)`` int64 LUTs and the kernel cost.
    """
    residuals = np.asarray(residuals)
    codebooks = np.asarray(codebooks)
    if residuals.ndim != 2:
        raise ValueError(f"residuals must be 2-D, got {residuals.shape}")
    if codebooks.ndim != 3:
        raise ValueError(f"codebooks must be 3-D, got {codebooks.shape}")
    g, d = residuals.shape
    m, cb, dsub = codebooks.shape
    if m * dsub != d:
        raise ValueError(f"codebooks cover dim {m * dsub}, residuals have {d}")

    r = residuals.astype(np.int64).reshape(g, m, 1, dsub)
    diff = r - codebooks.astype(np.int64)[None]
    misses = 0
    if square_lut is not None:
        squares, misses = square_lut.square(diff)
    else:
        squares = diff * diff
    luts = squares.sum(axis=3)

    cost = lut_build_cost(
        g, d, m, cb, codebooks.nbytes,
        multiplier_less=square_lut is not None,
        misses=misses,
    )
    return luts, cost
