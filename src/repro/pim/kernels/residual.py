"""RC kernel: residual of queries against one cluster centroid.

Per task (one query × one cluster): the tasklet streams the centroid's
D bytes from MRAM, subtracts it from the query held in WRAM, and keeps
the residual in WRAM for the LC kernel. D subtractions, 2D WRAM loads,
D stores, one DMA transaction of D bytes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.contracts import KernelShape, ResourceContract, WramTerm
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


def _rc_mix(s: KernelShape) -> InstructionMix:
    return InstructionMix(
        add=float(s.g * s.d), load=float(2 * s.g * s.d), store=float(s.g * s.d)
    )


def _rc_traffic(s: KernelShape) -> MemoryTraffic:
    return MemoryTraffic(
        sequential_read=float(s.g * s.d), transactions=float(s.g)
    )


def _rc_wram(s: KernelShape):
    return [
        WramTerm("query", s.d),  # uint8 query held for the batch
        WramTerm("residual", 4 * s.d),  # int32 residual handed to LC
        WramTerm("centroid_staging", min(s.d, s.dma_burst), per_tasklet=True),
    ]


#: Closed-form resource claim checked by ``repro lint`` (see
#: :mod:`repro.analysis.costcheck` / :mod:`repro.analysis.resources`).
CONTRACT = ResourceContract(
    kernel="RC",
    instruction_mix=_rc_mix,
    memory_traffic=_rc_traffic,
    wram_terms=_rc_wram,
    dma_transfers=lambda s: {"centroid": float(s.d)},
    notes="per task: D subs, 2D WRAM loads, D stores, one D-byte DMA",
)


def residual_cost(g: int, d: int, centroid_nbytes: int) -> KernelCost:
    """RC cost for ``g`` queries against one ``d``-dim centroid.

    Closed form shared by :func:`run_residual` and the batched executor
    (which computes residuals vectorized across the whole batch but
    charges per shard group exactly as the per-group path would).
    """
    return KernelCost(
        kernel="RC",
        instructions=InstructionMix(
            add=float(g * d), load=float(2 * g * d), store=float(g * d)
        ),
        traffic=MemoryTraffic(
            sequential_read=float(g * centroid_nbytes), transactions=float(g)
        ),
    )


def run_residual(
    queries: np.ndarray, centroid: np.ndarray
) -> Tuple[np.ndarray, KernelCost]:
    """Compute int32 residuals of ``g`` queries to one centroid.

    Parameters
    ----------
    queries: ``(g, D)`` uint8 — this batch's queries probing the cluster.
    centroid: ``(D,)`` uint8.
    """
    queries = np.asarray(queries)
    centroid = np.asarray(centroid)
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-D, got {queries.shape}")
    if centroid.shape != (queries.shape[1],):
        raise ValueError(
            f"centroid shape {centroid.shape} incompatible with queries {queries.shape}"
        )
    g, d = queries.shape
    residuals = queries.astype(np.int32) - centroid.astype(np.int32)
    return residuals, residual_cost(g, d, centroid.nbytes)
