"""DC kernel: ADC distance scan over a cluster's PQ codes.

Per task the tasklet streams the cluster's ``(n, M)`` codes from MRAM
in sequential DMA bursts and, per point, gathers M LUT entries from
WRAM and accumulates them: M WRAM loads + (M-1) adds + M address
computations per point. This is the paper's dominant kernel at small
``nlist`` (Fig. 8: DC shrinks as nlist grows and LC takes over).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.contracts import KernelShape, ResourceContract, WramTerm
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


def _dc_mix(s: KernelShape) -> InstructionMix:
    return InstructionMix(
        add=float(s.g * s.n * (s.m - 1)),
        load=float(s.g * s.n * s.m),
        control=float(s.g * s.n * s.m),
    )


def _dc_traffic(s: KernelShape) -> MemoryTraffic:
    code_block = s.n * s.m * s.code_bytes
    return MemoryTraffic(
        sequential_read=float(s.g * code_block),
        transactions=float(s.g * max(1, code_block // 2048)),
    )


def _dc_wram(s: KernelShape):
    code_block = s.n * s.m * s.code_bytes
    staging = min(code_block, s.dma_burst) if s.n else s.dma_burst
    return [
        WramTerm("adc_lut", s.adc_lut_bytes),
        WramTerm("codes_staging", staging, per_tasklet=True),
    ]


def _dc_dma(s: KernelShape):
    code_block = s.n * s.m * s.code_bytes
    return {"codes_burst": float(min(code_block, s.dma_burst) if s.n else s.dma_burst)}


#: Closed-form resource claim checked by ``repro lint``.
CONTRACT = ResourceContract(
    kernel="DC",
    instruction_mix=_dc_mix,
    memory_traffic=_dc_traffic,
    wram_terms=_dc_wram,
    dma_transfers=_dc_dma,
    notes="per point: M WRAM gathers, M-1 adds, M address computations",
)


def distance_scan_cost(g: int, n: int, m: int, codes_nbytes: int) -> KernelCost:
    """DC cost for ``g`` LUTs scanned over one ``(n, m)`` code block.

    Closed form shared by :func:`run_distance_scan` and the batched
    executor (whose functional scan runs in row chunks and, optionally,
    in worker processes — the cost is charged once per shard group).
    """
    mix = InstructionMix(
        add=float(g * n * (m - 1)),
        load=float(g * n * m),
        control=float(g * n * m),  # address calc + MRAM masking (paper §V-B)
    )
    traffic = MemoryTraffic(
        sequential_read=float(g * codes_nbytes),
        transactions=float(g * max(1, codes_nbytes // 2048)),
    )
    return KernelCost(kernel="DC", instructions=mix, traffic=traffic)


def scan_distances(luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Functional core of DC: ``(g, M, CB)`` LUTs × ``(n, M)`` codes →
    ``(g, n)`` int64 distances. No cost accounting — callers that model
    timing charge :func:`distance_scan_cost` separately."""
    luts = np.asarray(luts)
    codes = np.asarray(codes)
    if luts.ndim != 3:
        raise ValueError(f"luts must be 3-D (g, M, CB), got {luts.shape}")
    if codes.ndim != 2:
        raise ValueError(f"codes must be 2-D (n, M), got {codes.shape}")
    m = luts.shape[1]
    if codes.shape[1] != m:
        raise ValueError(f"codes have {codes.shape[1]} sub-codes, luts have {m}")
    gathered = luts[:, np.arange(m)[None, :], codes.astype(np.intp)]
    return gathered.sum(axis=2)


def scan_distances_stacked(
    luts: np.ndarray, codes: np.ndarray
) -> np.ndarray:
    """Batched :func:`scan_distances` over same-shape jobs.

    ``(J, g, M, CB)`` LUT stacks × ``(J, n, M)`` code stacks →
    ``(J, g, n)`` int64 distances: one NumPy gather+reduce for a whole
    round of same-shape shard groups (the cross-DPU vectorized fast
    path). Each job's slice is bit-identical to
    ``scan_distances(luts[j], codes[j])`` — the gather is elementwise
    and the reduction runs over the same axis in the same order.
    No cost accounting — callers that model timing charge
    :func:`distance_scan_cost` per shard group separately.
    """
    luts = np.asarray(luts)
    codes = np.asarray(codes)
    if luts.ndim != 4:
        raise ValueError(f"luts must be 4-D (J, g, M, CB), got {luts.shape}")
    if codes.ndim != 3:
        raise ValueError(f"codes must be 3-D (J, n, M), got {codes.shape}")
    jj, g, m, _ = luts.shape
    if codes.shape[0] != jj or codes.shape[2] != m:
        raise ValueError(
            f"codes stack {codes.shape} incompatible with luts {luts.shape}"
        )
    ji = np.arange(jj)[:, None, None, None]
    gi = np.arange(g)[None, :, None, None]
    mi = np.arange(m)[None, None, None, :]
    ci = codes.astype(np.intp)[:, None, :, :]
    gathered = luts[ji, gi, mi, ci]  # (J, g, n, M)
    return gathered.sum(axis=3)


def run_distance_scan(
    luts: np.ndarray, codes: np.ndarray
) -> Tuple[np.ndarray, KernelCost]:
    """Scan one cluster's codes with ``g`` per-query LUTs.

    Parameters
    ----------
    luts: ``(g, M, CB)`` int64 (LC output).
    codes: ``(n, M)`` uint8/uint16 PQ codes of the cluster's points.

    Returns
    -------
    ``(g, n)`` int64 distances and the kernel cost.
    """
    luts = np.asarray(luts)
    codes = np.asarray(codes)
    dists = scan_distances(luts, codes)
    g = luts.shape[0]
    n, m = codes.shape
    return dists, distance_scan_cost(g, n, m, codes.nbytes)
