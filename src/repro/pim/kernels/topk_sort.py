"""TS kernel: per-query top-k maintenance over scanned distances.

On real DPUs each tasklet keeps a bounded max-heap of size K in WRAM
and offers every scanned candidate to it. Functionally we take the
exact top-k with vectorized selection; the *cost* charged is the heap's
expected work:

* every candidate pays one comparison against the heap root;
* a candidate that improves the heap pays a ``log2 K`` sift.

For n candidates arriving in random order against a running top-k, the
expected number of improvements is ``K + K * ln(n / K)`` (the k-record
count of a random permutation), which we use as the deterministic
estimate — summed candidate counts make it exact enough that Fig. 8's
TS share matches the paper's shape. ``BoundedMaxHeap`` in
``repro.ann.heap`` is the operation-exact (but Python-loop) variant
used by the tests to validate this estimate.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.analysis.contracts import KernelShape, ResourceContract, WramTerm
from repro.ann.heap import topk_smallest
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


def expected_heap_updates(n: int, k: int) -> float:
    """Expected number of heap insertions for n random-order candidates."""
    if n <= 0:
        return 0.0
    if n <= k:
        return float(n)
    return k + k * math.log(n / k)


def topk_sort_cost(g: int, n: int, k: int) -> KernelCost:
    """TS cost for ``g`` rows of ``n`` candidates kept to top-``k``.

    Closed form shared by :func:`run_topk_sort` and the batched
    executor (cost charged per shard group, functional work possibly in
    worker processes)."""
    kk = min(k, n) if n else k
    updates = expected_heap_updates(n, k)
    log_k = math.log2(max(k, 2))
    mix = InstructionMix(
        compare=float(g * n) + g * updates * log_k,
        store=g * updates,
    )
    # Per-task result write-back staged in WRAM; MRAM write of the k
    # (id, distance) pairs for the host gather.
    traffic = MemoryTraffic(
        sequential_write=float(g * kk * 8), transactions=float(g)
    )
    return KernelCost(kernel="TS", instructions=mix, traffic=traffic)


def topk_rows(
    dists: np.ndarray, ids: np.ndarray, k: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Functional core of TS: per-row top-k of a ``(g, n)`` block.

    Returns ``(ids_k, dists_k)`` per row, each sorted ascending by
    distance (stable in row order on ties). No cost accounting —
    callers that model timing charge :func:`topk_sort_cost` separately.
    """
    dists = np.asarray(dists)
    ids = np.asarray(ids)
    if dists.ndim != 2:
        raise ValueError(f"dists must be 2-D, got {dists.shape}")
    if ids.shape != (dists.shape[1],):
        raise ValueError(f"ids shape {ids.shape} != ({dists.shape[1]},)")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    g, n = dists.shape
    kk = min(k, n)
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    if n:
        sel, vals = topk_smallest(dists, kk, axis=1)
        for row in range(g):
            results.append((ids[sel[row]], vals[row]))
    else:
        empty_i = np.empty(0, dtype=np.int64)
        empty_d = np.empty(0, dtype=dists.dtype)
        results = [(empty_i, empty_d) for _ in range(g)]
    return results


def run_topk_sort(
    dists: np.ndarray, ids: np.ndarray, k: int
) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], KernelCost]:
    """Top-k per row of a ``(g, n)`` distance block.

    Parameters
    ----------
    dists: ``(g, n)`` int64 (DC output for one cluster shard).
    ids: ``(n,)`` int64 point ids of the shard.
    k: neighbors to keep.

    Returns
    -------
    A list of ``(ids_k, dists_k)`` per row (each sorted ascending), and
    the kernel cost. Rows with fewer than k candidates return what
    exists.
    """
    dists = np.asarray(dists)
    results = topk_rows(dists, ids, k)
    g, n = dists.shape
    return results, topk_sort_cost(g, n, k)


def _ts_mix(s: KernelShape) -> InstructionMix:
    updates = expected_heap_updates(s.n, s.k)
    log_k = math.log2(max(s.k, 2))
    return InstructionMix(
        compare=float(s.g * s.n) + s.g * updates * log_k,
        store=s.g * updates,
    )


def _ts_traffic(s: KernelShape) -> MemoryTraffic:
    kk = min(s.k, s.n) if s.n else s.k
    return MemoryTraffic(
        sequential_write=float(s.g * kk * 8), transactions=float(s.g)
    )


def _ts_wram(s: KernelShape):
    kk = min(s.k, s.n) if s.n else s.k
    return [
        # Bounded max-heap of (id, distance) pairs, one per tasklet.
        WramTerm("topk_heap", 8 * s.k, per_tasklet=True),
        WramTerm("topk_writeback_staging", 8 * kk, per_tasklet=True),
    ]


#: Closed-form resource claim checked by ``repro lint``.
CONTRACT = ResourceContract(
    kernel="TS",
    instruction_mix=_ts_mix,
    memory_traffic=_ts_traffic,
    wram_terms=_ts_wram,
    dma_transfers=lambda s: {
        "topk_writeback": float(8 * (min(s.k, s.n) if s.n else s.k))
    },
    notes="expected k-record heap work; see expected_heap_updates()",
)
