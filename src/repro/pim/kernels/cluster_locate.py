"""CL kernel: nearest-centroid selection.

Cluster locating runs on the host by default (the paper places it
there: its C2IO is relatively high after multiplier-less conversion,
and host execution overlaps with DPU work). This kernel exists for the
``cluster_locate_on="pim"`` placement variant: each DPU holds a slice
of the centroid table and returns its local top-nprobe per query; the
host merges the partial lists.

Cost per (query, centroid) pair: D subtractions, D squares (mul or
square-LUT load), D-1 accumulates, plus a log2(nprobe) heap update for
improving candidates.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.analysis.contracts import (
    KernelShape,
    ResourceContract,
    WramTerm,
    square_lut_bytes,
)
from repro.ann.heap import topk_smallest
from repro.core.square_lut import SquareLut
from repro.pim.dpu import KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic
from repro.pim.kernels.topk_sort import expected_heap_updates


def _cl_mix(s: KernelShape) -> InstructionMix:
    keep = min(s.k, s.n) if s.n else s.k
    pairs = float(s.g * s.n)
    updates = s.g * expected_heap_updates(s.n, keep)
    mix = InstructionMix(
        add=pairs * (2 * s.d - 1),
        compare=pairs + updates * math.log2(max(keep, 2)),
    )
    if s.multiplier_less:
        mix.load = pairs * s.d
    else:
        mix.mul = pairs * s.d
    return mix


def _cl_traffic(s: KernelShape) -> MemoryTraffic:
    return MemoryTraffic(
        sequential_read=float(s.g * s.n * s.d), transactions=float(s.g)
    )


def _cl_wram(s: KernelShape):
    keep = min(s.k, s.n) if s.n else s.k
    terms = [
        WramTerm("query", s.d),
        WramTerm("nprobe_heap", 8 * keep, per_tasklet=True),
        WramTerm("centroid_staging", min(s.d, s.dma_burst), per_tasklet=True),
    ]
    if s.multiplier_less:
        terms.append(WramTerm("square_lut", square_lut_bytes(8)))
    return terms


#: Closed-form resource claim checked by ``repro lint``. Shape mapping:
#: ``g`` = queries, ``n`` = centroids in this DPU's slice, ``k`` = nprobe.
CONTRACT = ResourceContract(
    kernel="CL",
    instruction_mix=_cl_mix,
    memory_traffic=_cl_traffic,
    wram_terms=_cl_wram,
    dma_transfers=lambda s: {"centroid_row": float(s.d)},
    notes="host-placed by default; contract covers the pim variant",
)


def run_cluster_locate(
    queries: np.ndarray,
    centroids: np.ndarray,
    nprobe: int,
    square_lut: Optional[SquareLut] = None,
) -> Tuple[Tuple[np.ndarray, np.ndarray], KernelCost]:
    """Top-nprobe centroids for each query over a centroid slice.

    Parameters
    ----------
    queries: ``(q, D)`` uint8.
    centroids: ``(n_local, D)`` uint8 — this DPU's slice.
    nprobe: clusters to keep per query (capped at the slice size).

    Returns
    -------
    ``((probe_idx, probe_dist), cost)`` where ``probe_idx`` is
    ``(q, min(nprobe, n_local))`` int64 *local* indices into the slice.
    """
    queries = np.asarray(queries)
    centroids = np.asarray(centroids)
    if queries.ndim != 2 or centroids.ndim != 2:
        raise ValueError("queries and centroids must be 2-D")
    if queries.shape[1] != centroids.shape[1]:
        raise ValueError(
            f"dim mismatch: queries {queries.shape[1]} vs centroids {centroids.shape[1]}"
        )
    if nprobe < 1:
        raise ValueError(f"nprobe must be >= 1, got {nprobe}")
    nq, d = queries.shape
    nc = centroids.shape[0]
    keep = min(nprobe, nc)

    diff = queries.astype(np.int64)[:, None, :] - centroids.astype(np.int64)[None]
    if square_lut is not None:
        squares, _misses = square_lut.square(diff)
    else:
        squares = diff * diff
    dist = squares.sum(axis=2)
    idx, vals = topk_smallest(dist, keep, axis=1)

    pairs = float(nq * nc)
    updates = nq * expected_heap_updates(nc, keep)
    mix = InstructionMix(
        add=pairs * (2 * d - 1),
        compare=pairs + updates * math.log2(max(keep, 2)),
    )
    if square_lut is None:
        mix.mul = pairs * d
    else:
        mix.load = pairs * d
    traffic = MemoryTraffic(
        sequential_read=float(nq * centroids.nbytes),
        transactions=float(nq),
    )
    return (idx.astype(np.int64), vals), KernelCost(
        kernel="CL", instructions=mix, traffic=traffic
    )
