"""The DPU model: memory + cycle accounting.

A :class:`Dpu` owns an MRAM object store (cluster codes, centroids,
ids, square-LUTs broadcast by the host) and a WRAM budget, and converts
:class:`KernelCost` records into cycles:

``cycles = max(compute_slots / (ipc * compute_scale), mram_cycles)``

mirroring the paper's Eq. 11 ``t = max(C/(F*PE), IO/BW)`` at per-DPU
granularity: the DPU pipeline can overlap DMA with computation (24
tasklets provide latency hiding), so the slower of the two streams
bounds throughput. MRAM cycles price sequential and random traffic at
different bandwidths and charge a fixed DMA setup per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.pim.config import DpuConfig
from repro.pim.isa import InstructionMix, IsaCostModel
from repro.pim.memory import MemoryTraffic, Mram, Wram


@dataclass
class KernelCost:
    """Work report for one kernel execution on one DPU."""

    kernel: str
    instructions: InstructionMix = field(default_factory=InstructionMix)
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)

    def merged_with(self, other: "KernelCost") -> "KernelCost":
        if self.kernel != other.kernel:
            raise ValueError(
                f"cannot merge kernel costs {self.kernel!r} and {other.kernel!r}"
            )
        return KernelCost(
            kernel=self.kernel,
            instructions=self.instructions + other.instructions,
            traffic=self.traffic + other.traffic,
        )


class Dpu:
    """One simulated DPU: local memories plus a cycle ledger.

    The ledger is per-kernel (``cycles_by_kernel``) so the engine can
    produce the paper's Fig. 8 breakdown without re-running anything.
    """

    def __init__(
        self,
        dpu_id: int,
        config: DpuConfig,
        isa: IsaCostModel = IsaCostModel(),
    ) -> None:
        self.dpu_id = dpu_id
        self.config = config
        self.isa = isa
        self.mram = Mram(config.mram_bytes)
        self.wram = Wram(config.wram_bytes)
        self.cycles_by_kernel: Dict[str, float] = {}
        self.stall_cycles: float = 0.0
        self._costs: List[KernelCost] = []

    # ----- cycle accounting -------------------------------------------------
    def compute_cycles(self, mix: InstructionMix) -> float:
        """Pipeline cycles for an instruction mix."""
        slots = self.isa.issue_slots(mix)
        ipc = self.config.effective_ipc
        return slots / (ipc * self.config.compute_scale)

    def mram_cycles(self, traffic: MemoryTraffic) -> float:
        """Cycles spent moving MRAM traffic."""
        cfg = self.config
        bytes_per_cycle_seq = cfg.mram_bandwidth_bytes_per_s / cfg.frequency_hz
        bytes_per_cycle_rand = bytes_per_cycle_seq * cfg.mram_random_derate
        seq = traffic.sequential_read + traffic.sequential_write
        rand = traffic.random_read + traffic.random_write
        return (
            seq / bytes_per_cycle_seq
            + rand / bytes_per_cycle_rand
            + traffic.transactions * cfg.mram_dma_setup_cycles
        )

    def charge(self, cost: KernelCost) -> float:
        """Account a kernel execution; returns the cycles it consumed.

        Compute and memory streams overlap (tasklet-level latency
        hiding), so the charged time is their max, plus DMA setup which
        cannot be hidden.
        """
        comp = self.compute_cycles(cost.instructions)
        mem = self.mram_cycles(cost.traffic)
        cycles = max(comp, mem)
        self.cycles_by_kernel[cost.kernel] = (
            self.cycles_by_kernel.get(cost.kernel, 0.0) + cycles
        )
        self._costs.append(cost)
        return cycles

    def stall(self, cycles: float) -> float:
        """Advance the DPU's timeline without doing work.

        Models waits the fault layer charges to the DPU itself — e.g.
        the backoff before a transient kernel fault's retry. Stall time
        counts toward ``total_cycles`` (it delays everything after it
        on this DPU's timeline) but not toward any kernel's ledger.
        """
        if cycles < 0:
            raise ValueError(f"stall cycles must be >= 0, got {cycles}")
        self.stall_cycles += cycles
        return cycles

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles_by_kernel.values()) + self.stall_cycles

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    def reset_ledger(self) -> None:
        """Clear accumulated cycles (memory contents are kept)."""
        self.cycles_by_kernel.clear()
        self.stall_cycles = 0.0
        self._costs.clear()

    def cost_log(self) -> List[KernelCost]:
        return list(self._costs)
