"""Hardware configuration for the simulated PIM system.

Defaults reproduce the paper's platform: UPMEM PIM-DIMMs with
2,530 DPUs at 450 MHz (we default to a scaled-down DPU count for
laptop-scale corpora; the ratio of clusters per DPU is what benchmarks
preserve), 64 MB MRAM + 64 KB WRAM per DPU, 24 hardware threads
(tasklets), and a 19.2 GB/s DDR4-2400 host channel that is ~0.75% of
the combined internal PIM bandwidth.

``compute_scale`` multiplies DPU arithmetic throughput, reproducing the
paper's Fig. 13 forward-looking experiment (2x / 5x compute).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DpuConfig:
    """One DPU's microarchitectural parameters."""

    frequency_hz: float = 450e6
    num_tasklets: int = 16  # ≤ 24; ≥ 11 keeps the pipeline full
    pipeline_depth: int = 11  # revisit stages needed for 1 IPC
    wram_bytes: int = 64 * 1024
    mram_bytes: int = 64 * 1024 * 1024
    # Peak sequential MRAM→WRAM streaming bandwidth per DPU (bytes/s).
    # ~700 MB/s measured at 450 MHz per Gómez-Luna et al.; the paper's
    # "1 GB/s" is the nominal figure. We default to the nominal number
    # scaled by the measured 63.3% efficiency elsewhere (see
    # ``mram_random_derate`` for random access).
    mram_bandwidth_bytes_per_s: float = 1.0e9
    # Random (small-stride) MRAM access achieves ~63.3% of peak per the
    # paper's own citation; DMA setup latency dominates small transfers.
    mram_random_derate: float = 0.633
    # Fixed DMA setup cost per MRAM transaction, cycles.
    mram_dma_setup_cycles: int = 77
    # Compute-ability multiplier (Fig. 13: 1.0, 2.0, 5.0).
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= self.num_tasklets <= 24:
            raise ValueError(f"num_tasklets must be in [1, 24], got {self.num_tasklets}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be > 0")
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be > 0")
        if not 0 < self.mram_random_derate <= 1:
            raise ValueError("mram_random_derate must be in (0, 1]")

    @property
    def effective_ipc(self) -> float:
        """Sustained instructions/cycle given resident tasklets.

        The UPMEM pipeline interleaves tasklets; with fewer tasklets
        than the pipeline depth the same tasklet cannot re-issue until
        its previous instruction retires, capping IPC at
        ``num_tasklets / pipeline_depth``.
        """
        return min(1.0, self.num_tasklets / self.pipeline_depth)


@dataclass(frozen=True)
class TransferConfig:
    """Host <-> PIM transfer characteristics.

    ``host_bandwidth_bytes_per_s`` is per memory channel (DDR4-2400:
    19.2 GB/s, the paper's number). Servers drive PIM DIMMs on several
    channels in parallel; ``num_channels`` scales scatter/gather
    throughput (payloads split across channels) but not broadcasts
    (every channel must carry the full replica for its own DIMMs, so a
    broadcast is bounded by one channel's bandwidth regardless).
    """

    host_bandwidth_bytes_per_s: float = 19.2e9
    num_channels: int = 1
    # Fixed software overhead per host->DPU launch/synchronization.
    launch_latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.host_bandwidth_bytes_per_s <= 0:
            raise ValueError("host_bandwidth_bytes_per_s must be > 0")
        if self.num_channels < 1:
            raise ValueError("num_channels must be >= 1")

    @property
    def aggregate_bandwidth(self) -> float:
        return self.host_bandwidth_bytes_per_s * self.num_channels


@dataclass(frozen=True)
class PimSystemConfig:
    """Whole-system shape."""

    num_dpus: int = 256
    dpus_per_rank: int = 64
    dimm_power_watts: float = 13.92  # paper §V-B
    dpus_per_dimm: int = 128
    dpu: DpuConfig = field(default_factory=DpuConfig)
    transfer: TransferConfig = field(default_factory=TransferConfig)
    # Worker processes for the functional shard-scan fan-out (see
    # repro.pim.parallel). 0/1 = serial; results are bit-identical
    # either way, and the executor falls back to serial when process
    # pools are unavailable.
    shard_workers: int = 0
    # Which pool implementation backs shard_workers: "persistent"
    # (zero-copy shared-memory residency, the default) or "percall"
    # (the legacy per-round ProcessPoolExecutor, kept as the perf-gate
    # baseline). Ignored when shard_workers <= 1.
    shard_pool: str = "persistent"
    # Host-side kernel implementation for the functional scans and LUT
    # builds (see repro.pim.backend; mirrors
    # SearchParams.kernel_backend, which takes precedence when set to a
    # non-"auto" value, as does a per-call run_batch override). "auto"
    # resolves to the compiled numba build when importable, else the
    # fused NumPy backend. Bit-identical results and identical cycle
    # ledgers either way — only host wall-clock differs.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.num_dpus <= 0:
            raise ValueError("num_dpus must be > 0")
        if self.dpus_per_rank <= 0 or self.dpus_per_dimm <= 0:
            raise ValueError("rank/dimm sizes must be > 0")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if self.shard_pool not in ("persistent", "percall"):
            raise ValueError(
                "shard_pool must be 'persistent' or 'percall', "
                f"got {self.shard_pool!r}"
            )
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(
                "kernel_backend must be 'auto', 'numpy', or 'numba', "
                f"got {self.kernel_backend!r}"
            )

    @property
    def num_dimms(self) -> int:
        return -(-self.num_dpus // self.dpus_per_dimm)  # ceil div

    @property
    def total_power_watts(self) -> float:
        return self.num_dimms * self.dimm_power_watts

    @property
    def combined_mram_bandwidth(self) -> float:
        """Aggregate internal bandwidth across all DPUs (bytes/s)."""
        return self.num_dpus * self.dpu.mram_bandwidth_bytes_per_s

    def with_compute_scale(self, scale: float) -> "PimSystemConfig":
        """Clone with scaled DPU compute ability (Fig. 13 sweeps)."""
        return replace(self, dpu=replace(self.dpu, compute_scale=scale))


def paper_system_config() -> PimSystemConfig:
    """The paper's full platform: 2,530 DPUs @ 450 MHz."""
    return PimSystemConfig(num_dpus=2530)


def scaled_system_config(num_dpus: int = 256) -> PimSystemConfig:
    """Laptop-scale system preserving per-DPU characteristics."""
    return PimSystemConfig(num_dpus=num_dpus)


def hbm_pim_system_config(num_units: int = 512) -> PimSystemConfig:
    """An HBM-PIM-style platform (paper §II-B's comparison class).

    Samsung's HBM-PIM places SIMD processing units on a logic die next
    to the DRAM banks: per-unit compute is far stronger than an UPMEM
    DPU (a 300 MHz unit with 16-wide FP16 SIMD ≈ 10x a scalar DPU at
    450 MHz), per-unit bank bandwidth is ~10x higher, but per-unit
    capacity is small and the *total* capacity is bounded by the HBM
    stacks — the paper's §II-B point that "processing in die-stacking
    memories can also attain huge bandwidth, [but] the capacity is
    bounded". The engine runs on this config unchanged; MRAM capacity
    errors at build time are the capacity wall showing itself.

    Numbers are indicative (Samsung's product is simulator-only, as the
    paper notes); the preset exists to exercise platform portability
    and the capacity-vs-compute trade-off, not to model Aquabolt-XL
    precisely.
    """
    # 6 GB of HBM per stack, 2 stacks, shared across units.
    total_capacity = 12 * 1024**3
    return PimSystemConfig(
        num_dpus=num_units,
        dpus_per_rank=32,
        dpus_per_dimm=64,  # "pseudo-channel group" stands in for a DIMM
        dimm_power_watts=25.0,  # HBM stack power share
        dpu=DpuConfig(
            frequency_hz=300e6,
            num_tasklets=16,
            pipeline_depth=8,
            wram_bytes=128 * 1024,  # per-unit SRAM buffers
            mram_bytes=total_capacity // num_units,
            mram_bandwidth_bytes_per_s=9.6e9,  # bank-level bandwidth
            mram_random_derate=0.8,
            mram_dma_setup_cycles=20,
            compute_scale=10.0,  # 16-wide SIMD at 300 MHz vs scalar 450 MHz
        ),
        transfer=TransferConfig(
            host_bandwidth_bytes_per_s=32e9, num_channels=2
        ),
    )
