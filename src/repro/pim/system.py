"""The PIM system: DPUs + host transfer channel + batch execution.

Execution semantics mirror UPMEM's host-synchronous model, the root of
the paper's load-balancing problem: the host launches a kernel on *all*
DPUs and must wait for the slowest one before it can gather results or
submit the next batch. Batch time is therefore

    t_batch = max_over_dpus(dpu_cycles) / f_dpu

plus any host<->PIM transfer time that is not overlapped.

:meth:`PimSystem.run_batch` takes per-DPU task lists (produced by the
runtime scheduler), executes the RC→LC→DC→TS kernel chain over each
DPU's resident cluster shards, and returns per-(query, shard) partial
top-k lists plus a :class:`BatchTiming` with the per-DPU, per-kernel
cycle ledger that Figs. 8/10/11/12 are built from.

Execution is batch-first: the numeric work for a round is vectorized
across the whole batch (RC+LC once per unique (query, centroid) pair,
DC+TS per shard group over all of its queries, optionally fanned out
to worker processes — see :mod:`repro.pim.parallel`), while cycle
charging replays the per-DPU shard-group order with the kernels'
closed-form costs, so ledgers, traces, and fault semantics are
identical to per-group execution and the results are bit-exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.square_lut import SquareLut
from repro.faults.plan import FaultPlan
from repro.pim.backend import (
    KernelBackend,
    resolve_backend,
)
from repro.pim.backend import (
    take_fallback_events as take_backend_fallback_events,
)
from repro.pim.config import PimSystemConfig
from repro.pim.dpu import Dpu
from repro.pim.kernels import (
    distance_scan_cost,
    lut_build_cost,
    residual_cost,
    run_cluster_locate,
    topk_sort_cost,
)
from repro.pim.parallel import (
    ExecutionPlanner,
    make_executor,
    scan_jobs_stacked,
    scan_shard_group,
)
from repro.pim.transfer import HostTransferModel

#: Byte budget for one LC diff tensor chunk in the batched LUT builder;
#: bounds transient memory without affecting results (the build is
#: pair-independent).
_LUT_CHUNK_BYTES = 32 * 1024 * 1024


@dataclass
class ShardData:
    """One cluster shard resident on a DPU."""

    shard_key: str
    centroid: np.ndarray  # (D,) uint8
    ids: np.ndarray  # (n,) int64
    codes: np.ndarray  # (n, M) uint8/uint16


@dataclass
class BatchTiming:
    """Timing/provenance record for one PIM batch."""

    per_dpu_cycles: np.ndarray  # (num_dpus,)
    kernel_cycles: Dict[str, float]  # summed over DPUs
    pim_seconds: float  # max-DPU time (the batch's critical path)
    transfer_seconds: float  # host<->PIM traffic for this batch
    num_tasks: int
    # Fault provenance: tasks lost to dead DPUs (query index as passed
    # in `assignments`, shard key), and in-batch recovery counters.
    failed_tasks: List[Tuple[int, str]] = field(default_factory=list)
    transient_retries: int = 0
    transfer_timeouts: int = 0

    @property
    def busy_fraction(self) -> float:
        """Mean DPU utilization: avg cycles / max cycles (1 = balanced)."""
        mx = self.per_dpu_cycles.max() if len(self.per_dpu_cycles) else 0.0
        if mx <= 0:
            return 1.0
        return float(self.per_dpu_cycles.mean() / mx)


@dataclass
class PartialResult:
    """One (query, shard) task's local top-k."""

    query_index: int
    ids: np.ndarray
    distances: np.ndarray


class PimSystem:
    """A collection of simulated DPUs behind a host channel.

    Pass a :class:`~repro.pim.trace.Tracer` to record every kernel
    execution on a per-DPU cycle timeline (Fig. 5-style execution
    traces, exportable to Chrome trace JSON).
    """

    def __init__(
        self,
        config: PimSystemConfig,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
        observer=None,
    ) -> None:
        self.config = config
        self.dpus: List[Dpu] = [
            Dpu(i, config.dpu) for i in range(config.num_dpus)
        ]
        self.transfer = HostTransferModel(config.transfer)
        self._shards: Dict[str, Tuple[int, ShardData]] = {}
        # Centroid identity registry: shards sharing centroid *content*
        # (replicas and parts of one cluster) share LUT construction in
        # the batched executor. Keyed by raw bytes so arbitrary shard
        # keys work; two clusters with identical centroids would also
        # share, which is exact (the LUT depends only on the centroid).
        self._cent_id_of: Dict[bytes, int] = {}
        self._centroid_by_id: List[np.ndarray] = []
        self._shard_cent: Dict[str, int] = {}
        # Opt-in worker pool for the functional shard scans, plus the
        # per-round serial/vectorized/pool strategy chooser. The
        # persistent pool attaches shard arrays lazily (first pool
        # round) via _ensure_pool_residency.
        self.executor = make_executor(
            config.shard_workers,
            config.shard_pool,
            kernel_backend=config.kernel_backend,
        )
        self.planner = ExecutionPlanner()
        self._residency_dirty = True
        # Tombstone liveness: shard key → live row indices (None / absent
        # means every stored row is live). Stored rows keep streaming
        # through DC — only the candidate set shrinks — so the arena
        # residency stays valid across deletions; the live filter ships
        # per round instead.
        self._live_rows: Dict[str, Optional[np.ndarray]] = {}
        self._live_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.codebooks: Optional[np.ndarray] = None
        self._codebooks64: Optional[np.ndarray] = None
        self.square_lut: Optional[SquareLut] = None
        self.tracer = tracer
        # Optional repro.obs.EngineObserver; None costs one check per site.
        self.observer = observer
        if fault_plan is not None and fault_plan.num_dpus != config.num_dpus:
            raise ValueError(
                f"fault plan covers {fault_plan.num_dpus} DPUs but the "
                f"system has {config.num_dpus}"
            )
        self.fault_plan = fault_plan
        self._batch_index = 0
        self._observed_dead: Set[int] = set()
        # Per-DPU effective clock: stragglers run derated for the run.
        if fault_plan is not None:
            self._eff_freq = config.dpu.frequency_hz * fault_plan.derates
        else:
            self._eff_freq = np.full(config.num_dpus, config.dpu.frequency_hz)

    def dead_dpus(self) -> Set[int]:
        """DPUs observed dead so far (fail-stopped in an executed batch)."""
        return set(self._observed_dead)

    def _max_seconds(self, per_dpu_cycles: np.ndarray) -> float:
        """Critical-path seconds over per-DPU cycle counts.

        With a fault plan, each DPU runs at its own (possibly derated)
        clock, so the batch ends with ``max_i(cycles_i / f_i)`` rather
        than ``max_i(cycles_i) / f``.
        """
        if len(per_dpu_cycles) == 0:
            return 0.0
        return float(np.max(per_dpu_cycles / self._eff_freq, initial=0.0))

    def _charge(self, dpu: Dpu, cost, detail: str = "") -> float:
        """Charge a kernel cost, recording a trace event if tracing."""
        start = dpu.total_cycles
        cycles = dpu.charge(cost)
        if self.tracer is not None:
            self.tracer.record(
                cost.kernel, dpu.dpu_id, start, start + cycles, detail
            )
        if self.observer is not None:
            self.observer.on_kernel(cost.kernel, dpu.dpu_id, cycles, cost.traffic)
        return cycles

    # ----- offline loading ------------------------------------------------
    def place_shard(self, dpu_id: int, shard: ShardData) -> None:
        """Store a shard's data in a DPU's MRAM (raises on overflow)."""
        if not 0 <= dpu_id < len(self.dpus):
            raise ValueError(f"dpu_id {dpu_id} out of range [0, {len(self.dpus)})")
        if shard.shard_key in self._shards:
            raise ValueError(f"shard {shard.shard_key!r} already placed")
        dpu = self.dpus[dpu_id]
        dpu.mram.store(f"codes:{shard.shard_key}", shard.codes)
        dpu.mram.store(f"ids:{shard.shard_key}", shard.ids)
        dpu.mram.store(f"centroid:{shard.shard_key}", shard.centroid)
        self._shards[shard.shard_key] = (dpu_id, shard)
        cent_key = np.ascontiguousarray(shard.centroid).tobytes()
        cent_id = self._cent_id_of.get(cent_key)
        if cent_id is None:
            cent_id = len(self._centroid_by_id)
            self._cent_id_of[cent_key] = cent_id
            self._centroid_by_id.append(np.asarray(shard.centroid))
        self._shard_cent[shard.shard_key] = cent_id
        # Placement changes invalidate the worker pool's zero-copy
        # residency; it is re-hosted on the next pool round.
        self._residency_dirty = True

    def update_shard(self, shard_key: str, ids: np.ndarray, codes: np.ndarray) -> None:
        """Replace an already-placed shard's rows (the add() grow path).

        Re-stores the MRAM objects (budget-checked), mutates the shard
        record in place so every holder of the :class:`ShardData` sees
        the new rows, and invalidates pool residency and liveness
        caches.
        """
        if shard_key not in self._shards:
            raise KeyError(f"shard {shard_key!r} not placed")
        if len(ids) != len(codes):
            raise ValueError(
                f"ids/codes row mismatch: {len(ids)} vs {len(codes)}"
            )
        dpu_id, shard = self._shards[shard_key]
        dpu = self.dpus[dpu_id]
        dpu.mram.store(f"codes:{shard_key}", codes)
        dpu.mram.store(f"ids:{shard_key}", ids)
        shard.ids = ids
        shard.codes = codes
        self._live_cache.pop(shard_key, None)
        self._residency_dirty = True

    def set_shard_liveness(
        self, shard_key: str, live_rows: Optional[np.ndarray]
    ) -> None:
        """Install (or clear, with ``None``) a shard's live-row filter.

        ``live_rows`` are indices into the shard's stored rows that
        survive tombstoning. The scan path drops the other rows before
        top-k; DC still streams every stored row and is charged for it.
        """
        if shard_key not in self._shards:
            raise KeyError(f"shard {shard_key!r} not placed")
        if live_rows is None:
            self._live_rows.pop(shard_key, None)
        else:
            self._live_rows[shard_key] = np.asarray(live_rows, dtype=np.intp)
        self._live_cache.pop(shard_key, None)

    def _scan_arrays(
        self, shard_key: str, shard: ShardData
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The (codes, ids) a scan sees: live rows only, cached."""
        live = self._live_rows.get(shard_key)
        if live is None:
            return shard.codes, shard.ids
        pair = self._live_cache.get(shard_key)
        if pair is None:
            pair = (shard.codes[live], shard.ids[live])
            self._live_cache[shard_key] = pair
        return pair

    def _live_count(self, shard_key: str, shard: ShardData) -> int:
        live = self._live_rows.get(shard_key)
        return len(shard.ids) if live is None else len(live)

    def shard_location(self, shard_key: str) -> int:
        return self._shards[shard_key][0]

    def get_shard(self, shard_key: str) -> ShardData:
        return self._shards[shard_key][1]

    def num_shards(self) -> int:
        return len(self._shards)

    def load_codebooks(self, codebooks: np.ndarray) -> float:
        """Broadcast the PQ codebooks into every DPU's MRAM.

        Returns modeled transfer seconds (offline cost).
        """
        codebooks = np.asarray(codebooks)
        for dpu in self.dpus:
            dpu.mram.store("codebooks", codebooks)
        self.codebooks = codebooks
        self._codebooks64 = None  # widened copy rebuilt lazily
        return self.transfer.broadcast(
            "codebooks", codebooks.nbytes, len(self.dpus)
        )

    def load_square_lut(self, lut: SquareLut) -> float:
        """Broadcast the square LUT's resident window into WRAM."""
        for dpu in self.dpus:
            dpu.wram.store("square_lut", lut.table[: 2 * lut.resident_max_abs + 1])
        self.square_lut = lut
        return self.transfer.broadcast(
            "square_lut", lut.resident_bytes, len(self.dpus)
        )

    def mram_usage(self) -> np.ndarray:
        """Per-DPU MRAM bytes in use."""
        return np.array([d.mram.used_bytes for d in self.dpus], dtype=np.int64)

    # ----- CL on PIM (cluster_locate_on="pim" placement) --------------------
    def load_centroid_slices(self, centroids: np.ndarray) -> float:
        """Distribute the centroid table across DPUs in contiguous slices.

        Enables :meth:`locate_on_pim`. Returns offline transfer seconds.
        """
        centroids = np.asarray(centroids)
        num = len(self.dpus)
        bounds = np.linspace(0, centroids.shape[0], num + 1).astype(int)
        self._centroid_bounds = bounds
        for i, dpu in enumerate(self.dpus):
            sl = centroids[bounds[i] : bounds[i + 1]]
            if len(sl):
                dpu.mram.store("centroid_slice", sl)
        return self.transfer.scatter("centroid_slices", centroids.nbytes)

    def locate_on_pim(self, queries: np.ndarray, nprobe: int):
        """CL phase executed on the DPUs over their centroid slices.

        Each DPU returns its slice-local top-nprobe per query; the host
        merges the partial lists (cheap: num_dpus*nprobe candidates per
        query) — the paper's alternative placement when CL's C2IO makes
        host execution the bottleneck. The candidate gather pays the
        narrow host channel, which is why CL defaults to the host.

        Returns ``(probes, cl_seconds, cl_kernel_cycles)``.
        """
        if not hasattr(self, "_centroid_bounds"):
            raise RuntimeError(
                "centroid slices not loaded; call load_centroid_slices first"
            )
        queries = np.asarray(queries)
        nq = queries.shape[0]
        cycles_before = np.array([d.total_cycles for d in self.dpus])
        cand_ids = []
        cand_dists = []
        gather_bytes = 0
        bounds = self._centroid_bounds
        for i, dpu in enumerate(self.dpus):
            if bounds[i + 1] <= bounds[i]:
                continue
            sl = dpu.mram.load("centroid_slice")
            (idx, vals), cost = run_cluster_locate(
                queries, sl, nprobe, self.square_lut
            )
            self._charge(dpu, cost, "centroid_slice")
            cand_ids.append(idx + bounds[i])
            cand_dists.append(vals)
            gather_bytes += idx.size * 12  # id + distance per candidate
        ids = np.concatenate(cand_ids, axis=1)
        dists = np.concatenate(cand_dists, axis=1)
        order = np.argsort(dists, axis=1, kind="stable")[:, :nprobe]
        probes = np.take_along_axis(ids, order, axis=1)

        cycles_after = np.array([d.total_cycles for d in self.dpus])
        delta = cycles_after - cycles_before
        cl_seconds = self._max_seconds(delta)
        cl_gather = self.transfer.gather("cl_candidates", gather_bytes)
        cl_seconds += cl_gather
        if self.observer is not None:
            self.observer.on_transfer("gather", cl_gather)
        return probes, cl_seconds, float(delta.sum())

    # ----- batch execution --------------------------------------------------
    def run_batch(
        self,
        assignments: Dict[int, Sequence[Tuple[int, str]]],
        queries: np.ndarray,
        k: int,
        *,
        multiplier_less: bool = True,
        batch_span: int = 1,
        plan: str = "auto",
        kernel_backend: Optional[str] = None,
    ) -> Tuple[List[PartialResult], BatchTiming]:
        """Execute one batch of (query, shard) tasks.

        Parameters
        ----------
        assignments: dpu_id → list of (query_index, shard_key) tasks.
            Every shard_key must be resident on that dpu.
        queries: ``(q, D)`` uint8 — the batch's queries (broadcast).
        k: local top-k each task returns.
        multiplier_less: use the square LUT in LC (must be loaded).
        plan: data-plane strategy for the functional scans ("auto" /
            "serial" / "vectorized" / "pool" — see
            :class:`~repro.pim.parallel.ExecutionPlanner`). Purely a
            wall-clock choice: results and cycle ledgers are identical
            in every mode.
        kernel_backend: per-call kernel-backend override ("auto" /
            "numpy" / "numba" — see :mod:`repro.pim.backend`); None
            takes :attr:`PimSystemConfig.kernel_backend`. Like
            ``plan``, purely a wall-clock choice — every backend is
            bit-identical and the cycle ledgers are charged from
            closed forms over shapes, never from the backend.
        batch_span: how many *logical* batches this round covers. Fault
            plans index events by logical batch (``batch_size`` query
            chunks); batched execution folds several logical batches
            into one physical round, so the round consumes the fault
            events of every logical batch it spans — a DPU whose crash
            batch falls inside the span is dead for the whole round,
            and each spanned transient/timeout hit fires once.

        Returns
        -------
        (partials, timing): all tasks' local top-k lists plus the batch
        timing record. Tasks assigned to a fail-stopped DPU are *not*
        executed; they come back in ``timing.failed_tasks`` for the
        caller to fail over (see :mod:`repro.faults`).
        """
        for dpu_id in assignments:
            if not 0 <= dpu_id < len(self.dpus):
                raise ValueError(
                    f"assignment dpu_id {dpu_id} out of range "
                    f"[0, {len(self.dpus)})"
                )
        if self.codebooks is None:
            raise RuntimeError("codebooks not loaded; call load_codebooks first")
        sq = None
        if multiplier_less:
            if self.square_lut is None:
                raise RuntimeError(
                    "multiplier_less requested but no square LUT loaded"
                )
            sq = self.square_lut

        if batch_span < 1:
            raise ValueError(f"batch_span must be >= 1, got {batch_span}")
        if plan not in ("auto", "serial", "vectorized", "pool"):
            raise ValueError(
                "plan must be one of ('auto', 'serial', 'vectorized', "
                f"'pool'), got {plan!r}"
            )
        backend_mode = (
            kernel_backend
            if kernel_backend is not None
            else self.config.kernel_backend
        )
        backend = resolve_backend(backend_mode)
        queries = np.asarray(queries)
        num_tasks = sum(len(t) for t in assignments.values())
        batch = self._batch_index
        self._batch_index += batch_span
        fplan = self.fault_plan
        if fplan is not None:
            self._observed_dead |= fplan.dead_at(batch + batch_span - 1)
        if self.tracer is not None:
            self.tracer.next_batch()
        obs = self.observer
        if obs is not None:
            obs.on_batch()
            obs.on_kernel_backend(backend.name)

        # Host->PIM: queries are broadcast, per-DPU task lists scattered.
        bcast = self.transfer.broadcast("queries", queries.nbytes, len(self.dpus))
        scat = self.transfer.scatter("task_lists", num_tasks * 8)
        xfer = bcast + scat
        if obs is not None:
            obs.on_transfer("broadcast", bcast)
            obs.on_transfer("scatter", scat)

        cycles_before = np.array([d.total_cycles for d in self.dpus])
        kernel_before: Dict[str, float] = {}
        for d in self.dpus:
            for kname, c in d.cycles_by_kernel.items():
                kernel_before[kname] = kernel_before.get(kname, 0.0) + c

        # ---- flatten assignments into the ordered shard-group list.
        # Group order is the legacy per-DPU traversal (assignment
        # iteration order, then first-appearance shard order within a
        # DPU): the charging pass below replays it exactly, so traces,
        # per-DPU ledgers, and fault semantics are unchanged.
        groups: List[Tuple[int, str, List[int]]] = []
        failed_tasks: List[Tuple[int, str]] = []
        for dpu_id, tasks in assignments.items():
            if not tasks:
                continue
            if dpu_id in self._observed_dead:
                # Fail-stop: the DPU never responds; its tasks are lost
                # and surface in timing.failed_tasks for failover.
                failed_tasks.extend(tasks)
                continue
            # Group this DPU's tasks by shard so RC/LC/DC batch across
            # the queries probing the same shard (as tasklets would
            # share the streamed cluster data).
            by_shard: Dict[str, List[int]] = {}
            for qidx, skey in tasks:
                owner, _ = self._shards[skey]
                if owner != dpu_id:
                    raise ValueError(
                        f"task references shard {skey!r} on DPU {owner}, "
                        f"assigned to DPU {dpu_id}"
                    )
                by_shard.setdefault(skey, []).append(qidx)
            for skey, qidxs in by_shard.items():
                groups.append((dpu_id, skey, qidxs))

        # ---- functional pass: vectorized RC+LC per centroid, DC+TS
        # per shard group via the planner-chosen path (serial loop,
        # stacked cross-DPU NumPy calls, or worker processes).
        group_rows, group_misses = self._run_groups_functional(
            groups,
            queries,
            k,
            sq,
            plan=plan,
            fault_active=fplan is not None,
            backend=backend,
        )

        # ---- charging pass: replay the per-DPU group order, charging
        # closed-form kernel costs identical to the per-group kernels'.
        partials: List[PartialResult] = []
        transient_retries = 0
        result_bytes = 0
        transient_done: Set[int] = set()
        for gi, (dpu_id, skey, qidxs) in enumerate(groups):
            dpu = self.dpus[dpu_id]
            shard = self._shards[skey][1]
            misses = group_misses[gi]
            live_n = self._live_count(skey, shard)
            self._charge_shard_group(
                dpu, shard, len(qidxs), k, sq, misses, skey, live_n=live_n
            )
            # One pre-drawn transient kernel fault per (DPU, logical
            # batch) at most: the first shard group's execution is
            # wasted and retried on the same DPU after a modeled
            # backoff. A round spanning several logical batches fires
            # each spanned hit once. The retry recomputes identical
            # rows, so only cycles differ.
            if fplan is not None and dpu_id not in transient_done:
                transient_done.add(dpu_id)
                hits = sum(
                    fplan.transient_at(dpu_id, b)
                    for b in range(batch, batch + batch_span)
                )
                for retry in range(hits):
                    transient_retries += 1
                    if obs is not None:
                        obs.on_transient_retry()
                    dpu.stall(
                        fplan.config.transient_backoff_s
                        * self.config.dpu.frequency_hz
                    )
                    # The retry event starts after the original attempt
                    # ends (the `repro lint` trace invariant).
                    self._charge_shard_group(
                        dpu, shard, len(qidxs), k, sq, misses,
                        f"{skey}#retry{retry + 1}", live_n=live_n,
                    )
            for qidx, (rids, rdists) in zip(qidxs, group_rows[gi]):
                partials.append(
                    PartialResult(
                        query_index=qidx, ids=rids, distances=rdists
                    )
                )
                result_bytes += len(rids) * 16  # id + distance

        # PIM->host: gather per-task top-k results. A pre-drawn timeout
        # charges the wasted attempt, then the gather is re-issued.
        transfer_timeouts = 0
        if fplan is not None:
            for b in range(batch, batch + batch_span):
                if fplan.transfer_timeout_at(b):
                    transfer_timeouts += 1
                    wasted = self.transfer.timeout(
                        "results", fplan.config.transfer_timeout_s
                    )
                    xfer += wasted
                    if obs is not None:
                        obs.on_transfer_timeout()
                        obs.on_transfer("timeout", wasted)
        gath = self.transfer.gather("results", result_bytes)
        xfer += gath
        if obs is not None:
            obs.on_transfer("gather", gath)
            if failed_tasks:
                obs.on_failed_tasks(len(failed_tasks))

        cycles_after = np.array([d.total_cycles for d in self.dpus])
        per_dpu = cycles_after - cycles_before
        kernel_after: Dict[str, float] = {}
        for d in self.dpus:
            for kname, c in d.cycles_by_kernel.items():
                kernel_after[kname] = kernel_after.get(kname, 0.0) + c
        kernel_cycles = {
            kname: kernel_after.get(kname, 0.0) - kernel_before.get(kname, 0.0)
            for kname in sorted(set(kernel_before) | set(kernel_after))
        }

        timing = BatchTiming(
            per_dpu_cycles=per_dpu,
            kernel_cycles=kernel_cycles,
            pim_seconds=self._max_seconds(per_dpu),
            transfer_seconds=xfer,
            num_tasks=num_tasks,
            failed_tasks=failed_tasks,
            transient_retries=transient_retries,
            transfer_timeouts=transfer_timeouts,
        )
        return partials, timing

    def _run_groups_functional(
        self,
        groups: List[Tuple[int, str, List[int]]],
        queries: np.ndarray,
        k: int,
        sq: Optional[SquareLut],
        *,
        plan: str = "auto",
        fault_active: bool = False,
        backend: Optional[KernelBackend] = None,
    ) -> Tuple[List[list], List[int]]:
        """Numeric results for every shard group, vectorized per centroid.

        RC and LC run once per unique (query, centroid) pair — parts
        and replicas of a cluster reuse the same LUT rows instead of
        rebuilding them per shard — and DC/TS run per shard group over
        all of its queries at once, on the data-plane path the planner
        picks for this round (serial per-group loop, stacked cross-DPU
        NumPy calls, or the worker pool). Integer math makes every path
        bit-identical to per-group recomputation.

        Returns per-group result rows and per-group square-LUT miss
        counts (for LC cost charging), indexed like ``groups``.
        """
        if backend is None:
            backend = resolve_backend(self.config.kernel_backend)
        # One strategy decision per round, from the round's measured
        # size; the per-centroid dispatch below then applies it while
        # keeping the centroid-major LUT memory bound.
        path = "serial"
        scan_points = 0
        if groups:
            num_jobs = 0
            scan_points = 0
            m = self.codebooks.shape[0]
            for _, skey, qidxs in groups:
                n = self._live_count(skey, self._shards[skey][1])
                if n:
                    num_jobs += 1
                    scan_points += len(qidxs) * n * m
            if plan in ("auto", "pool") and self.executor is not None:
                self._ensure_pool_residency()
            path = self.planner.choose(
                plan,
                num_jobs=num_jobs,
                scan_points=scan_points,
                executor=self.executor,
                fault_active=fault_active,
                backend=backend,
            )
            if self.observer is not None:
                self.observer.on_plan_decision(path)

        # Centroid-major consumption order bounds LUT memory to one
        # centroid's pairs at a time regardless of how its shard groups
        # interleave across DPUs.
        cent_groups: Dict[int, List[int]] = {}
        for gi, (_, skey, _) in enumerate(groups):
            cent_groups.setdefault(self._shard_cent[skey], []).append(gi)

        empty_row = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        group_rows: List[list] = [None] * len(groups)  # type: ignore[list-item]
        group_misses: List[int] = [0] * len(groups)
        scan_seconds = 0.0
        for cent_id, gis in cent_groups.items():
            # Unique queries probing this centroid, first-use order.
            row_of: Dict[int, int] = {}
            for gi in gis:
                for qidx in groups[gi][2]:
                    if qidx not in row_of:
                        row_of[qidx] = len(row_of)
            luts, pair_misses = self._build_cent_luts(
                list(row_of),
                self._centroid_by_id[cent_id],
                queries,
                sq,
                backend=backend,
            )
            jobs = []
            job_gis = []
            for gi in gis:
                qidxs = groups[gi][2]
                skey = groups[gi][1]
                shard = self._shards[skey][1]
                group_misses[gi] = int(
                    sum(pair_misses[row_of[q]] for q in qidxs)
                )
                codes_s, ids_s = self._scan_arrays(skey, shard)
                if len(ids_s):
                    luts_g = luts[[row_of[q] for q in qidxs]]
                    jobs.append((luts_g, codes_s, ids_s, k))
                    job_gis.append(gi)
                else:
                    group_rows[gi] = [empty_row] * len(qidxs)
            if jobs:
                t0 = time.perf_counter()
                if path == "pool" and self.executor is not None:
                    if getattr(self.executor, "kind", "") == "persistent":
                        results = self.executor.scan_groups(
                            jobs,
                            keys=[groups[gi][1] for gi in job_gis],
                            lives=[
                                self._live_rows.get(groups[gi][1])
                                for gi in job_gis
                            ],
                        )
                    else:
                        results = self.executor.scan_groups(jobs)
                elif path in ("vectorized", "compiled"):
                    results = scan_jobs_stacked(jobs, backend=backend)
                else:
                    results = [
                        scan_shard_group(*job, backend=backend)
                        for job in jobs
                    ]
                scan_seconds += time.perf_counter() - t0
                for gi, rows in zip(job_gis, results):
                    group_rows[gi] = rows

        # Measured rate feedback: plan="auto" arbitrates pool vs the
        # in-process (possibly compiled) path empirically once both
        # have been observed. Purely advisory — never touches results.
        self.planner.note_round(path, scan_points, scan_seconds)

        # Surface every pool degradation (instead of swallowing it):
        # drained here so events land even when the observer was
        # attached after construction.
        if self.executor is not None:
            events = self.executor.take_fallback_events()
            if self.observer is not None:
                for reason in events:
                    self.observer.on_pool_fallback(reason)
        # Same for kernel-backend degradations (numba missing, JIT
        # failure mid-flight): drained every round so the module-level
        # buffer never grows unbounded, reported when observed.
        for reason in take_backend_fallback_events():
            if self.observer is not None:
                self.observer.on_kernel_fallback(reason)
        return group_rows, group_misses

    def _ensure_pool_residency(self) -> None:
        """Host every shard's codes/ids in the persistent pool's arena.

        Lazy (first pool-eligible round) and re-run after any
        :meth:`place_shard`, which invalidates previous residency.
        No-op for the legacy per-call pool.
        """
        ex = self.executor
        if ex is None or getattr(ex, "kind", "") != "persistent":
            return
        if not self._residency_dirty and ex.attached:
            return
        ex.host_shards(
            {
                key: (shard.codes, shard.ids)
                for key, (_, shard) in self._shards.items()
            }
        )
        self._residency_dirty = False

    def _build_cent_luts(
        self,
        qidxs: List[int],
        centroid: np.ndarray,
        queries: np.ndarray,
        sq: Optional[SquareLut],
        backend: Optional[KernelBackend] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched RC+LC: LUTs for every (query, centroid) pair.

        Identical integer math to ``run_residual`` + ``run_lut_build``,
        chunked over pairs to bound the transient diff tensor. The
        multiplier-less path keeps its square-LUT table gathers (the
        miss accounting needs the diff tensor anyway); the plain
        squaring path dispatches to the kernel backend's fused
        :meth:`~repro.pim.backend.KernelBackend.build_luts` — exact
        int64 either way. Returns ``(g, M, CB)`` int64 LUTs and
        per-pair square-LUT miss counts.
        """
        codebooks = self.codebooks
        m, cb, dsub = codebooks.shape
        d = m * dsub
        # Widened copy cached across rounds (invalidated by
        # load_codebooks); serving loops hit this every batch.
        if self._codebooks64 is None:
            self._codebooks64 = codebooks.astype(np.int64)[None]
        cb64 = self._codebooks64
        g = len(qidxs)
        luts = np.empty((g, m, cb), dtype=np.int64)
        pair_misses = np.zeros(g, dtype=np.int64)
        partial = sq is not None and sq.resident_max_abs < sq.max_abs
        chunk = max(1, _LUT_CHUNK_BYTES // (d * cb * 8))
        for c0 in range(0, g, chunk):
            sel = qidxs[c0 : c0 + chunk]
            residuals = queries[sel].astype(np.int32) - centroid.astype(np.int32)
            if sq is None and backend is not None:
                luts[c0 : c0 + chunk] = backend.build_luts(residuals, cb64[0])
                continue
            r = residuals.astype(np.int64).reshape(len(sel), m, 1, dsub)
            diff = r - cb64
            if sq is not None:
                squares, _ = sq.square(diff)
                if partial:
                    pair_misses[c0 : c0 + chunk] = np.count_nonzero(
                        np.abs(diff) > sq.resident_max_abs, axis=(1, 2, 3)
                    )
            else:
                squares = diff * diff
            luts[c0 : c0 + chunk] = squares.sum(axis=3)
        return luts, pair_misses

    def _charge_shard_group(
        self,
        dpu: Dpu,
        shard: ShardData,
        g: int,
        k: int,
        sq: Optional[SquareLut],
        misses: int,
        detail: str,
        live_n: Optional[int] = None,
    ) -> None:
        """Charge the RC→LC→DC→TS chain for one shard group.

        Costs come from the kernels' closed forms over shapes alone, so
        they are identical whether the numeric work ran per group, was
        deduplicated across shards, or executed in a worker process.
        Tombstones are charged honestly: DC streams and scans every
        *stored* row (deleted codes still occupy MRAM and flow through
        the kernel — the filter happens during the scan), while TS sorts
        only the *live* candidates that survive it.
        """
        d = int(np.asarray(shard.centroid).shape[0])
        m, cb, _ = self.codebooks.shape
        self._charge(dpu, residual_cost(g, d, shard.centroid.nbytes), detail)
        self._charge(
            dpu,
            lut_build_cost(
                g, d, m, cb, self.codebooks.nbytes,
                multiplier_less=sq is not None,
                misses=misses,
            ),
            detail,
        )
        n = len(shard.ids)
        live = n if live_n is None else live_n
        if n:
            self._charge(
                dpu, distance_scan_cost(g, n, m, shard.codes.nbytes), detail
            )
            if live:
                self._charge(dpu, topk_sort_cost(g, live, k), detail)

    def reset_ledgers(self) -> None:
        for d in self.dpus:
            d.reset_ledger()
        self.transfer.reset()

    def close(self) -> None:
        """Tear down the optional shard-executor worker pool."""
        if self.executor is not None:
            self.executor.close()
