"""Shared scan/LUT microbenchmark for the kernel backends.

Used by ``benchmarks/bench_kernels.py`` (the CI ``--smoke`` gate) and
the ``repro bench kernels`` CLI entry point. Measures every available
backend against the staged reference kernels
(:func:`repro.pim.kernels.scan_distances_stacked` /
the quantized pipeline's LUT build math) at a fixed shape, checks the
outputs are bit-identical, and reports best-of-N wall-clock speedups.

Timing here never flows into engine results — the record is pure
observability, which is why the wall-clock reads are fine in this
module (the data plane itself stays deterministic).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

import numpy as np

from repro.pim.backend import available_backends, resolve_backend
from repro.pim.kernels import scan_distances_stacked
from repro.utils.rng import SeedLike, ensure_rng

#: The gate shape: 16 stacked shard groups of 32 LUT rows x 2000
#: points, M=16 subspaces, CB=128 — the steady-state round shape of
#: the canonical sift-like configs, large enough that gather traffic
#: (not dispatch overhead) dominates.
SCAN_SHAPE = {"jobs": 16, "g": 32, "n": 2000, "m": 16, "cb": 128}

#: LUT-build shape: one 64-query chunk against the canonical M=16,
#: CB=128, dsub=8 codebooks.
LUT_SHAPE = {"g": 64, "m": 16, "cb": 128, "dsub": 8}

#: The CI gate: the best backend's stacked scan must beat the staged
#: reference by at least this factor at bit-identical output.
MIN_SCAN_SPEEDUP = 3.0


def _best_seconds(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall-clock for a timing harness.

    drimsan: allow wallclock-in-result — this module IS the stopwatch;
    nothing here flows into engine results or cycle ledgers.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _reference_build_luts(
    residuals: np.ndarray, codebooks: np.ndarray
) -> np.ndarray:
    """The per-call-cast staged LUT build the backends replace."""
    m, _cb, dsub = codebooks.shape
    r = residuals.astype(np.int64).reshape(len(residuals), m, 1, dsub)
    diff = r - codebooks.astype(np.int64)
    return (diff * diff).sum(axis=3)


def run_microbench(
    repeats: int = 5, seed: SeedLike = 0
) -> Dict[str, Any]:
    """Measure every available backend; return the machine-readable record.

    The record's ``gate_ok`` is True when the best backend clears
    :data:`MIN_SCAN_SPEEDUP` on the stacked scan with bit-equal
    output; ``backends[name]["bit_identical"]`` must be True for every
    backend regardless (a mismatch fails the gate outright).
    """
    rng = ensure_rng(seed)
    sh = SCAN_SHAPE
    luts = rng.integers(
        0, 1 << 20, size=(sh["jobs"], sh["g"], sh["m"], sh["cb"])
    ).astype(np.int64)
    codes = rng.integers(
        0, sh["cb"], size=(sh["jobs"], sh["n"], sh["m"])
    ).astype(np.uint8)

    lh = LUT_SHAPE
    residuals = rng.integers(
        -300, 300, size=(lh["g"], lh["m"] * lh["dsub"])
    ).astype(np.int32)
    codebooks = rng.integers(
        -255, 255, size=(lh["m"], lh["cb"], lh["dsub"])
    ).astype(np.int16)

    ref_scan = scan_distances_stacked(luts, codes)
    t_ref_scan = _best_seconds(
        lambda: scan_distances_stacked(luts, codes), repeats
    )
    ref_luts = _reference_build_luts(residuals, codebooks)
    t_ref_luts = _best_seconds(
        lambda: _reference_build_luts(residuals, codebooks), repeats
    )

    record: Dict[str, Any] = {
        "scan_shape": dict(sh),
        "lut_shape": dict(lh),
        "repeats": repeats,
        "min_scan_speedup": MIN_SCAN_SPEEDUP,
        "reference": {
            "scan_seconds": t_ref_scan,
            "lut_seconds": t_ref_luts,
        },
        "backends": {},
        "best_backend": None,
        "best_scan_speedup": 0.0,
        "gate_ok": False,
    }

    all_bit_identical = True
    for name in available_backends():
        backend = resolve_backend(name)
        backend.warmup()
        got_scan = backend.scan_stacked(luts, codes)
        got_luts = backend.build_luts(residuals, codebooks)
        bit_identical = bool(
            got_scan.dtype == ref_scan.dtype
            and np.array_equal(got_scan, ref_scan)
            and got_luts.dtype == ref_luts.dtype
            and np.array_equal(got_luts, ref_luts)
        )
        all_bit_identical = all_bit_identical and bit_identical
        t_scan = _best_seconds(
            lambda: backend.scan_stacked(luts, codes), repeats
        )
        t_luts = _best_seconds(
            lambda: backend.build_luts(residuals, codebooks), repeats
        )
        entry = {
            "scan_seconds": t_scan,
            "scan_speedup": t_ref_scan / t_scan if t_scan > 0 else 0.0,
            "lut_seconds": t_luts,
            "lut_speedup": t_ref_luts / t_luts if t_luts > 0 else 0.0,
            "bit_identical": bit_identical,
            "compiled": bool(backend.compiled),
        }
        record["backends"][name] = entry
        if entry["scan_speedup"] > record["best_scan_speedup"]:
            record["best_scan_speedup"] = entry["scan_speedup"]
            record["best_backend"] = name

    record["gate_ok"] = bool(
        all_bit_identical
        and record["best_scan_speedup"] >= MIN_SCAN_SPEEDUP
    )
    return record


def format_record(record: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_microbench` record."""
    sh = record["scan_shape"]
    lines = [
        (
            f"stacked scan J={sh['jobs']} g={sh['g']} n={sh['n']} "
            f"M={sh['m']} CB={sh['cb']}; reference "
            f"{record['reference']['scan_seconds'] * 1e3:.1f} ms"
        )
    ]
    for name, entry in record["backends"].items():
        lines.append(
            f"  {name:8s} scan {entry['scan_seconds'] * 1e3:7.1f} ms "
            f"({entry['scan_speedup']:.2f}x)  lut "
            f"{entry['lut_seconds'] * 1e3:6.2f} ms "
            f"({entry['lut_speedup']:.2f}x)  "
            f"bit_identical={entry['bit_identical']}"
        )
    lines.append(
        f"best: {record['best_backend']} at "
        f"{record['best_scan_speedup']:.2f}x "
        f"(gate >= {record['min_scan_speedup']:.1f}x: "
        f"{'OK' if record['gate_ok'] else 'FAIL'})"
    )
    return "\n".join(lines)


__all__ = [
    "LUT_SHAPE",
    "MIN_SCAN_SPEEDUP",
    "SCAN_SHAPE",
    "format_record",
    "run_microbench",
]
