"""Optional compiled kernel backend (``pip install repro[compiled]``).

``@njit(cache=True, parallel=True)`` builds of the three hot kernels:
the fused gather-accumulate scan (serial per job, ``prange`` across
LUT rows / stacked jobs), and the batched integer LUT build. All
arithmetic is int64, so the results are bit-identical to the NumPy
backend — the registry's guard enforces the degradation path when a
JIT compile or execution fails mid-flight.

The numba import happens inside :func:`_import_numba` only: a bare
install never triggers (or fails on) it, and tests monkeypatch this
single seam to simulate an absent numba. JIT compilation is paid in
:meth:`NumbaBackend.warmup` — called from pool-worker warmup before
the first real round — not on the first query.
"""

from __future__ import annotations

import numpy as np

from repro.pim.backend import KernelBackend


def _import_numba():
    """The single numba import seam (monkeypatched by fallback tests)."""
    import numba

    return numba


def _build_kernels(numba):
    """Compile the jitted kernels once per process (lazily)."""
    njit = numba.njit
    prange = numba.prange

    @njit(cache=True, parallel=True)
    def k_scan(luts, codes):
        g, m, _cb = luts.shape
        n = codes.shape[0]
        out = np.empty((g, n), dtype=np.int64)
        for gi in prange(g):
            for i in range(n):
                acc = np.int64(0)
                for mi in range(m):
                    acc += luts[gi, mi, codes[i, mi]]
                out[gi, i] = acc
        return out

    @njit(cache=True, parallel=True)
    def k_scan_stacked(luts, codes):
        num_jobs, g, m, _cb = luts.shape
        n = codes.shape[1]
        out = np.empty((num_jobs, g, n), dtype=np.int64)
        for j in prange(num_jobs):
            for gi in range(g):
                for i in range(n):
                    acc = np.int64(0)
                    for mi in range(m):
                        acc += luts[j, gi, mi, codes[j, i, mi]]
                    out[j, gi, i] = acc
        return out

    @njit(cache=True, parallel=True)
    def k_build_luts(residuals, codebooks):
        m, cb, dsub = codebooks.shape
        g = residuals.shape[0]
        out = np.empty((g, m, cb), dtype=np.int64)
        for gi in prange(g):
            for mi in range(m):
                base = mi * dsub
                for ci in range(cb):
                    acc = np.int64(0)
                    for di in range(dsub):
                        d = residuals[gi, base + di] - codebooks[mi, ci, di]
                        acc += d * d
                    out[gi, mi, ci] = acc
        return out

    return k_scan, k_scan_stacked, k_build_luts


class NumbaBackend(KernelBackend):
    """Compiled implementation; resolve through the registry, which
    wraps it in the degrade-on-failure guard."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self._kernels = None

    def available(self) -> bool:
        try:
            _import_numba()
        except Exception:
            return False
        return True

    def _ensure(self):
        if self._kernels is None:
            self._kernels = _build_kernels(_import_numba())
        return self._kernels

    def warmup(self) -> None:
        """Trigger JIT compilation on tiny inputs (pool warmup path)."""
        k_scan, k_scan_stacked, k_build_luts = self._ensure()
        luts = np.zeros((1, 2, 4), dtype=np.int64)
        codes = np.zeros((3, 2), dtype=np.int64)
        k_scan(luts, codes)
        k_scan_stacked(luts[None], codes[None])
        k_build_luts(
            np.zeros((1, 4), dtype=np.int64),
            np.zeros((2, 4, 2), dtype=np.int64),
        )

    def scan(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        k_scan, _, _ = self._ensure()
        luts = np.ascontiguousarray(luts, dtype=np.int64)
        if luts.ndim != 3:
            raise ValueError(f"luts must be (g, M, CB), got {luts.shape}")
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != luts.shape[1]:
            raise ValueError(
                f"codes must be (n, {luts.shape[1]}), got {codes.shape}"
            )
        return k_scan(luts, codes)

    def scan_stacked(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        _, k_scan_stacked, _ = self._ensure()
        luts = np.ascontiguousarray(luts, dtype=np.int64)
        if luts.ndim != 4:
            raise ValueError(f"luts must be (J, g, M, CB), got {luts.shape}")
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        if (
            codes.ndim != 3
            or codes.shape[0] != luts.shape[0]
            or codes.shape[2] != luts.shape[2]
        ):
            raise ValueError(
                f"codes must be ({luts.shape[0]}, n, {luts.shape[2]}), "
                f"got {codes.shape}"
            )
        return k_scan_stacked(luts, codes)

    def build_luts(
        self, residuals: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        _, _, k_build_luts = self._ensure()
        codebooks = np.ascontiguousarray(codebooks, dtype=np.int64)
        if codebooks.ndim != 3:
            raise ValueError(
                f"codebooks must be (M, CB, dsub), got {codebooks.shape}"
            )
        m, _cb, dsub = codebooks.shape
        residuals = np.ascontiguousarray(residuals, dtype=np.int64)
        if residuals.ndim != 2 or residuals.shape[1] != m * dsub:
            raise ValueError(
                f"residuals must be (g, {m * dsub}), got {residuals.shape}"
            )
        return k_build_luts(residuals, codebooks)
