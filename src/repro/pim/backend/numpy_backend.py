"""The guaranteed kernel backend: fused NumPy, no extra dependencies.

Same math as the reference kernels in
:mod:`repro.pim.kernels.distance_scan`, restructured for speed:

* the scan accumulates one ``(g, n)`` gather per subspace instead of
  materializing the staged ``(g, n, M)`` / ``(J, g, n, M)`` gather
  tensor — at the bench shape this alone is ~3-4x over the staged
  reference;
* when every LUT entry fits int32 (always true for the quantized
  pipeline, whose entries are bounded by ``dim * CODEBOOK_CLIP**2``)
  the gathers run on an int32 copy of the LUTs, halving gather
  traffic; the accumulator stays int64 so the sums are exact;
* tiny jobs (``g * n`` below :data:`FUSED_MIN_CELLS`) keep the staged
  reference path, where one big gather beats M small ones.

Every variant computes the identical int64 sums (integer addition is
exact and order-independent), so the outputs are bit-identical to the
reference kernels — property-tested in ``tests/test_pim_backend.py``.
No cost accounting here: callers charge the closed forms.
"""

from __future__ import annotations

import numpy as np

from repro.pim.backend import KernelBackend
from repro.pim.kernels import scan_distances, scan_distances_stacked

#: Below this many output cells (``g * n``) the fused per-subspace loop
#: loses to the reference's single staged gather; the variants are
#: bit-identical, so the cutover is purely a wall-clock choice.
FUSED_MIN_CELLS = 1024

_I32_MIN = np.iinfo(np.int32).min
_I32_MAX = np.iinfo(np.int32).max


def _gather_view(luts: np.ndarray) -> np.ndarray:
    """int32 copy of the LUTs when lossless, else the original.

    Gathering from int32 halves the memory traffic of the hot loop;
    the accumulator is int64 either way, and NumPy upcasts the gathered
    int32 values exactly, so the sums are unchanged.
    """
    if luts.size == 0 or luts.dtype.itemsize <= 4:
        return luts
    lo, hi = luts.min(), luts.max()
    if _I32_MIN <= lo and hi <= _I32_MAX:
        return luts.astype(np.int32)
    return luts


def _scan_fused(luts: np.ndarray, gather: np.ndarray, codes: np.ndarray) -> np.ndarray:
    g = luts.shape[0]
    n, m = codes.shape
    idx = codes.astype(np.intp)
    acc = np.zeros((g, n), dtype=np.int64)
    for mi in range(m):
        acc += gather[:, mi, :][:, idx[:, mi]]
    return acc


class NumpyBackend(KernelBackend):
    """Fused NumPy implementation of the three hot kernels."""

    name = "numpy"
    compiled = False

    def scan(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        luts = np.asarray(luts)
        codes = np.asarray(codes)
        if luts.ndim != 3:
            raise ValueError(f"luts must be (g, M, CB), got {luts.shape}")
        if codes.ndim != 2 or codes.shape[1] != luts.shape[1]:
            raise ValueError(
                f"codes must be (n, {luts.shape[1]}), got {codes.shape}"
            )
        if luts.shape[0] * codes.shape[0] < FUSED_MIN_CELLS:
            return scan_distances(luts, codes)
        return _scan_fused(luts, _gather_view(luts), codes)

    def scan_stacked(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        luts = np.asarray(luts)
        codes = np.asarray(codes)
        if luts.ndim != 4:
            raise ValueError(f"luts must be (J, g, M, CB), got {luts.shape}")
        if (
            codes.ndim != 3
            or codes.shape[0] != luts.shape[0]
            or codes.shape[2] != luts.shape[2]
        ):
            raise ValueError(
                f"codes must be ({luts.shape[0]}, n, {luts.shape[2]}), "
                f"got {codes.shape}"
            )
        num_jobs, g = luts.shape[0], luts.shape[1]
        n = codes.shape[1]
        if num_jobs == 0 or g * n < FUSED_MIN_CELLS:
            return scan_distances_stacked(luts, codes)
        gather = _gather_view(luts)
        out = np.empty((num_jobs, g, n), dtype=np.int64)
        for j in range(num_jobs):
            out[j] = _scan_fused(luts[j], gather[j], codes[j])
        return out

    def build_luts(
        self, residuals: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        residuals = np.asarray(residuals)
        codebooks = np.asarray(codebooks)
        if codebooks.ndim != 3:
            raise ValueError(
                f"codebooks must be (M, CB, dsub), got {codebooks.shape}"
            )
        m, cb, dsub = codebooks.shape
        if residuals.ndim != 2 or residuals.shape[1] != m * dsub:
            raise ValueError(
                f"residuals must be (g, {m * dsub}), got {residuals.shape}"
            )
        g = residuals.shape[0]
        r = residuals.astype(np.int64).reshape(g, m, 1, dsub)
        diff = r - codebooks.astype(np.int64)
        # Exact int64 contraction — identical values to
        # (diff * diff).sum(axis=3) without the squares temporary.
        return np.einsum("gmcd,gmcd->gmc", diff, diff)
