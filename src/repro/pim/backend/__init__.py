"""Pluggable kernel backends for the host-side hot path (ISSUE 10).

The ADC distance scan (DC) and LUT construction (LC) dominate the
host's functional wall-clock exactly as Fig. 8 of the paper predicts.
This package puts their implementations behind a small dispatch
registry so the engine can swap a fused / compiled build in and out
without touching any call site:

* :class:`KernelBackend` — the three-op interface: the fused
  gather-accumulate scan (:meth:`~KernelBackend.scan` /
  :meth:`~KernelBackend.scan_stacked`), the batched integer LUT build
  (:meth:`~KernelBackend.build_luts`), and the fused scan+local-top-k
  (:meth:`~KernelBackend.scan_topk`) that never materializes the full
  ``(g, n)`` distance matrix for clusters beyond
  :data:`SCAN_TOPK_N_CHUNK` points.
* ``numpy`` — the guaranteed backend (:mod:`.numpy_backend`): pure
  NumPy, fused per-subspace accumulation, no dependencies beyond the
  base install. Always available.
* ``numba`` — the optional compiled backend (:mod:`.numba_backend`):
  ``@njit(cache=True)`` kernels, parallel over jobs. Import-gated; when
  numba is missing the registry silently resolves to ``numpy`` and
  records a fallback event.

**Bit-identical by construction.** The ADC pipeline is integer end to
end and int64 sums are order-independent, so every backend produces
byte-equal distances, LUTs, and top-k rows. The modeled PIM cost is
charged separately from closed forms over shapes
(:func:`repro.pim.kernels.distance_scan_cost` et al.), so swapping
backends changes host wall-clock only — never a cycle ledger.

Resolution precedence (see :func:`resolve_backend`): per-call override
> ``SearchParams.kernel_backend`` > ``PimSystemConfig.kernel_backend``
> ``auto`` (numba when importable, else numpy). A compiled backend is
always wrapped in a guard that degrades to numpy on the first kernel
failure (JIT error mid-flight), records the reason for the
``drimann_kernel_fallbacks_total`` metric, and keeps results unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Valid backend selection modes. ``auto`` resolves to the best
#: available implementation; the named modes request one specifically
#: (``numba`` degrades to ``numpy`` with a recorded fallback when the
#: import is unavailable). Mirrored by ``SearchParams.kernel_backend``
#: and ``PimSystemConfig.kernel_backend`` validation.
KERNEL_BACKEND_MODES = ("auto", "numpy", "numba")

#: Cluster size above which :meth:`KernelBackend.scan_topk` switches
#: from the exact ``topk_rows``-over-the-full-matrix path to the
#: chunked scan+merge that never materializes ``(g, n)``. Every
#: backend and every execution path uses this same threshold, which is
#: what keeps the data plane bit-exact: below it all paths call the
#: identical selection kernel; at or above it all paths use the
#: identical canonical ``(distance, position)`` merge.
SCAN_TOPK_N_CHUNK = 1 << 16


class KernelBackend:
    """Interface of one kernel implementation (see module docstring).

    Subclasses implement the raw array math only. No cost accounting —
    callers charge the modeled PIM cycles separately from closed forms,
    which is the invariant that keeps ledgers backend-independent.
    """

    #: Registry name ("numpy", "numba", ...).
    name = "abstract"
    #: True for JIT/compiled implementations; lets the planner treat
    #: the in-process path as faster than plain vectorized NumPy.
    compiled = False

    def available(self) -> bool:
        """Whether this backend can run in the current process."""
        return True

    def warmup(self) -> None:
        """Pay one-time costs (JIT compilation) ahead of real queries."""

    # ----- the three hot kernels -----------------------------------------
    def scan(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Fused ADC scan: ``(g, M, CB)`` LUTs x ``(n, M)`` codes ->
        ``(g, n)`` int64 distances."""
        raise NotImplementedError

    def scan_stacked(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Stacked fused scan: ``(J, g, M, CB)`` x ``(J, n, M)`` ->
        ``(J, g, n)`` without a ``(J, g, n, M)`` intermediate."""
        raise NotImplementedError

    def build_luts(
        self, residuals: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        """Batched integer LUT build: ``(g, D)`` int residuals x
        ``(M, CB, dsub)`` int codebooks -> ``(g, M, CB)`` int64."""
        raise NotImplementedError

    # ----- fused scan + local top-k ---------------------------------------
    def scan_topk(
        self,
        luts: np.ndarray,
        codes: np.ndarray,
        ids: np.ndarray,
        k: int,
        n_chunk: int = SCAN_TOPK_N_CHUNK,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """DC + TS for one LUT block: per-row ``(ids_k, dists_k)``.

        For clusters of at most ``n_chunk`` points this is exactly
        ``topk_rows(self.scan(luts, codes), ids, k)`` — the one
        selection kernel every execution path shares. Larger clusters
        are scanned in ``n_chunk``-point column slices and merged with
        the canonical ``(distance, position)`` rule, so the full
        ``(g, n)`` matrix is never materialized.
        """
        from repro.pim.kernels import topk_rows

        n = codes.shape[0]
        if n <= n_chunk:
            return topk_rows(self.scan(luts, codes), ids, k)
        return _scan_topk_chunked(self, luts, codes, ids, k, n_chunk)


def _scan_topk_chunked(
    backend: KernelBackend,
    luts: np.ndarray,
    codes: np.ndarray,
    ids: np.ndarray,
    k: int,
    n_chunk: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Column-chunked scan+top-k with the canonical merge rule.

    Candidates are ranked by ``(distance, global position)`` via a
    per-row lexsort — a deterministic total order, identical no matter
    how the columns were chunked (verified against the unchunked path
    by the property tests whenever distances are untied).
    """
    g = luts.shape[0]
    n = codes.shape[0]
    kk = min(k, n)
    # Running candidate pool per row: at most kk survivors + one
    # chunk's fresh top-kk, merged after every slice.
    pool_d: Optional[np.ndarray] = None
    pool_p: Optional[np.ndarray] = None
    for c0 in range(0, n, n_chunk):
        dists = backend.scan(luts, codes[c0 : c0 + n_chunk])
        cn = dists.shape[1]
        ck = min(kk, cn)
        part = np.argpartition(dists, ck - 1, axis=1)[:, :ck]
        cand_d = np.take_along_axis(dists, part, axis=1)
        cand_p = part.astype(np.int64) + c0
        if pool_d is None:
            pool_d, pool_p = cand_d, cand_p
        else:
            pool_d = np.concatenate([pool_d, cand_d], axis=1)
            pool_p = np.concatenate([pool_p, cand_p], axis=1)
        if pool_d.shape[1] > kk:
            keep_d = np.empty((g, kk), dtype=pool_d.dtype)
            keep_p = np.empty((g, kk), dtype=np.int64)
            for row in range(g):
                order = np.lexsort((pool_p[row], pool_d[row]))[:kk]
                keep_d[row] = pool_d[row, order]
                keep_p[row] = pool_p[row, order]
            pool_d, pool_p = keep_d, keep_p
    assert pool_d is not None and pool_p is not None
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    for row in range(g):
        order = np.lexsort((pool_p[row], pool_d[row]))[:kk]
        results.append((ids[pool_p[row, order]], pool_d[row, order]))
    return results


class _GuardedBackend(KernelBackend):
    """Degrade-on-failure wrapper around a compiled backend.

    Each op tries the primary implementation once per call; the first
    exception (a JIT failure mid-flight, a typing error on an exotic
    dtype) records a fallback event and permanently delegates to the
    guaranteed numpy backend. Results are unchanged either way — both
    implementations are bit-identical by contract.
    """

    def __init__(
        self, primary: KernelBackend, fallback: KernelBackend
    ) -> None:
        self._primary = primary
        self._fallback = fallback
        self._degraded = False

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._fallback.name if self._degraded else self._primary.name

    @property
    def compiled(self) -> bool:  # type: ignore[override]
        return False if self._degraded else self._primary.compiled

    def available(self) -> bool:
        return True

    def _degrade(self, op: str, exc: BaseException) -> None:
        if not self._degraded:
            self._degraded = True
            record_fallback(f"{self._primary.name}-{op}-failed")

    def warmup(self) -> None:
        if self._degraded:
            return
        try:
            self._primary.warmup()
        except Exception as exc:
            self._degrade("warmup", exc)

    def scan(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        if not self._degraded:
            try:
                return self._primary.scan(luts, codes)
            except Exception as exc:
                self._degrade("scan", exc)
        return self._fallback.scan(luts, codes)

    def scan_stacked(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        if not self._degraded:
            try:
                return self._primary.scan_stacked(luts, codes)
            except Exception as exc:
                self._degrade("scan_stacked", exc)
        return self._fallback.scan_stacked(luts, codes)

    def build_luts(
        self, residuals: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        if not self._degraded:
            try:
                return self._primary.build_luts(residuals, codebooks)
            except Exception as exc:
                self._degrade("build_luts", exc)
        return self._fallback.build_luts(residuals, codebooks)

    def scan_topk(
        self,
        luts: np.ndarray,
        codes: np.ndarray,
        ids: np.ndarray,
        k: int,
        n_chunk: int = SCAN_TOPK_N_CHUNK,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        if not self._degraded:
            try:
                return KernelBackend.scan_topk(
                    self, luts, codes, ids, k, n_chunk
                )
            except Exception as exc:
                self._degrade("scan_topk", exc)
        return self._fallback.scan_topk(luts, codes, ids, k, n_chunk)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, Optional[KernelBackend]] = {}
_FALLBACK_EVENTS: List[str] = []


def register_backend(
    name: str, factory: Callable[[], KernelBackend]
) -> None:
    """Register a backend factory under ``name`` (idempotent)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def record_fallback(reason: str) -> None:
    """Record one backend degradation for the metrics layer."""
    _FALLBACK_EVENTS.append(reason)


def take_fallback_events() -> List[str]:
    """Drain fallback reasons recorded since the last call."""
    global _FALLBACK_EVENTS
    events, _FALLBACK_EVENTS = _FALLBACK_EVENTS, []
    return events


def _clear_instances() -> None:
    """Test hook: drop cached instances so availability is re-probed."""
    _INSTANCES.clear()


def _instance(name: str) -> Optional[KernelBackend]:
    """Cached backend instance, or None when unavailable."""
    if name in _INSTANCES:
        return _INSTANCES[name]
    factory = _FACTORIES.get(name)
    backend: Optional[KernelBackend] = None
    if factory is not None:
        try:
            candidate = factory()
            if candidate.available():
                backend = candidate
        except Exception:
            backend = None
    if backend is not None and backend.compiled:
        numpy_backend = _INSTANCES.get("numpy")
        if numpy_backend is None:
            numpy_backend = _FACTORIES["numpy"]()
            _INSTANCES["numpy"] = numpy_backend
        backend = _GuardedBackend(backend, numpy_backend)
    _INSTANCES[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable in this process, numpy first."""
    return tuple(
        name for name in KERNEL_BACKEND_MODES[1:] if _instance(name) is not None
    )


def resolve_backend(mode: str = "auto") -> KernelBackend:
    """Resolve a selection mode to a live backend instance.

    ``auto`` prefers the compiled backend when importable and silently
    takes numpy otherwise (not a fallback — auto made no promise).
    Requesting ``numba`` explicitly on a numba-less install degrades to
    numpy *and* records a ``numba-unavailable`` fallback event so the
    surprise is visible in the metrics.
    """
    if mode not in KERNEL_BACKEND_MODES:
        raise ValueError(
            f"kernel_backend must be one of {KERNEL_BACKEND_MODES}, "
            f"got {mode!r}"
        )
    if mode == "auto":
        backend = _instance("numba")
        if backend is not None:
            return backend
        mode = "numpy"
    if mode == "numba":
        backend = _instance("numba")
        if backend is None:
            record_fallback("numba-unavailable")
            mode = "numpy"
        else:
            return backend
    backend = _instance("numpy")
    assert backend is not None, "the numpy backend must always be available"
    return backend


__all__ = [
    "KERNEL_BACKEND_MODES",
    "SCAN_TOPK_N_CHUNK",
    "KernelBackend",
    "available_backends",
    "record_fallback",
    "register_backend",
    "resolve_backend",
    "take_fallback_events",
]


# Register the bundled implementations. The numpy module imports
# eagerly (it is the guaranteed path); the numba module is only
# imported when its factory runs, so a bare install never pays for —
# or fails on — the numba import.
from repro.pim.backend import numpy_backend as _numpy_mod  # noqa: E402

register_backend("numpy", _numpy_mod.NumpyBackend)


def _numba_factory() -> KernelBackend:
    from repro.pim.backend import numba_backend

    return numba_backend.NumbaBackend()


register_backend("numba", _numba_factory)
