"""Opt-in process-pool execution of shard-group scans.

The batched executor in :mod:`repro.pim.system` spends almost all of
its functional wall-clock in the DC/TS phase: gathering LUT entries
over every resident shard's code block and reducing to per-query
top-k. That work is embarrassingly parallel across shard groups (each
group touches one shard's codes and its own LUT rows), so large fleets
can fan it out over worker processes — mirroring how a real host would
drive independent PIM ranks from multiple threads.

:class:`ShardExecutor` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with two guarantees the simulator needs:

* **bit-exactness** — workers run the same pure kernels
  (:func:`~repro.pim.kernels.scan_distances` /
  :func:`~repro.pim.kernels.topk_rows`) the serial path runs, and
  results are returned in submission order, so enabling workers cannot
  change a single output bit (cycle charging happens in the parent,
  from shapes alone);
* **graceful fallback** — any failure to create or use the pool
  (restricted sandboxes, missing ``fork``, broken workers) silently
  degrades to the serial path; the executor never takes the engine
  down.

Workers are opt-in via ``PimSystemConfig.shard_workers`` (0 disables).
The pool is created lazily on first use and torn down with
:meth:`ShardExecutor.close`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.pim.kernels import scan_distances, topk_rows

#: Rows of LUTs scanned per functional DC call; bounds the transient
#: ``(rows, n, M)`` gather tensor without changing results (the scan
#: and top-k are row-independent).
ROW_CHUNK = 256

#: One shard-group scan job: (luts (g, M, CB), codes (n, M), ids (n,), k).
ScanJob = Tuple[np.ndarray, np.ndarray, np.ndarray, int]
#: Per-row output of a job: [(ids_k, dists_k)] in LUT row order.
ScanRows = List[Tuple[np.ndarray, np.ndarray]]


def scan_shard_group(
    luts: np.ndarray,
    codes: np.ndarray,
    ids: np.ndarray,
    k: int,
    row_chunk: int = ROW_CHUNK,
) -> ScanRows:
    """DC + TS over one shard group, chunked over LUT rows.

    The single functional scan path: the serial executor, the worker
    processes, and :meth:`PimSystem.run_batch` all funnel through this
    function, which is what makes parallel execution bit-exact by
    construction.
    """
    rows: ScanRows = []
    for c0 in range(0, len(luts), row_chunk):
        dists = scan_distances(luts[c0 : c0 + row_chunk], codes)
        rows.extend(topk_rows(dists, ids, k))
    return rows


def _scan_job(job: ScanJob) -> ScanRows:
    luts, codes, ids, k = job
    return scan_shard_group(luts, codes, ids, k)


class ShardExecutor:
    """Deterministic fan-out of shard-group scans over worker processes."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        self.num_workers = num_workers
        self._pool = None
        self._broken = False

    @property
    def parallel(self) -> bool:
        """Whether jobs currently fan out to worker processes."""
        return self.num_workers > 1 and not self._broken

    def _ensure_pool(self):
        if self._pool is None and not self._broken:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
            except Exception:
                self._broken = True
        return self._pool

    def scan_groups(self, jobs: Sequence[ScanJob]) -> List[ScanRows]:
        """Run jobs (possibly in parallel); results in submission order.

        Falls back to in-process execution when the pool is disabled,
        cannot be created, or dies mid-flight — the results are
        identical either way.
        """
        if not self.parallel or len(jobs) < 2:
            return [_scan_job(j) for j in jobs]
        pool = self._ensure_pool()
        if pool is None:
            return [_scan_job(j) for j in jobs]
        try:
            return list(pool.map(_scan_job, jobs))
        except Exception:
            # Broken pool (killed worker, pickling failure, sandbox
            # restriction): degrade permanently to serial.
            self._broken = True
            self.close()
            return [_scan_job(j) for j in jobs]

    def close(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None


def make_executor(shard_workers: int) -> Optional[ShardExecutor]:
    """Build the configured executor (None when workers are disabled)."""
    if shard_workers <= 1:
        return None
    return ShardExecutor(shard_workers)
