"""The parallel data plane: persistent zero-copy workers for shard scans.

The batched executor in :mod:`repro.pim.system` spends almost all of
its functional wall-clock in the DC/TS phase: gathering LUT entries
over every resident shard's code block and reducing to per-query
top-k. That work is embarrassingly parallel across shard groups (each
group touches one shard's codes and its own LUT rows), so large fleets
can fan it out over worker processes — mirroring how a real host would
drive independent PIM ranks from multiple threads.

Three executors and a planner live here:

* :func:`scan_shard_group` — the single functional scan path. The
  serial loop, the vectorized fast path's per-group fallback, and both
  worker pools all funnel through the same kernel backend
  (:mod:`repro.pim.backend` — every backend is bit-identical to the
  reference :func:`~repro.pim.kernels.scan_distances` /
  :func:`~repro.pim.kernels.topk_rows` pair), which is what makes
  every execution strategy bit-exact by construction.
* :class:`PersistentShardPool` — the default pool. Workers are spawned
  once, attach every shard's codes/ids through one
  :mod:`multiprocessing.shared_memory` segment (the arena), and keep
  them resident across rounds: the steady state ships only per-round
  task descriptors ``(shard_key, luts, k)`` down the pipe and result
  rows back. Nothing MRAM-resident is ever re-pickled.
* :class:`ShardExecutor` — the legacy per-call
  :class:`~concurrent.futures.ProcessPoolExecutor` wrapper, which
  re-pickles every shard's codes on every round. Kept as the
  comparison baseline for the ``bench_fig06 --smoke`` perf gate and
  selectable via ``PimSystemConfig.shard_pool="percall"``.
* :class:`ExecutionPlanner` — picks serial / vectorized / pool per
  round from the round's measured size and the pool's warmup state
  (see :attr:`~repro.core.params.SearchParams.plan`).

Every pool failure (creation, worker death, missing residency) degrades
to the serial path — results are identical either way — and is recorded
as a fallback event that :class:`~repro.pim.system.PimSystem` drains
into the ``drimann_pim_pool_fallbacks_total`` metric instead of being
swallowed silently.

Shared-memory hygiene: every segment this process creates is tracked in
a module registry and unlinked by :meth:`SharedShardArena.close`, by
:meth:`PersistentShardPool.close` (reached from ``engine.close()`` /
``PimSystem.close``), and — as a last resort, e.g. after a crashed
parent — by an ``atexit`` sweep. :func:`assert_no_leaked_segments`
makes the guarantee checkable from tests.
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pim.backend import (
    SCAN_TOPK_N_CHUNK,
    KernelBackend,
    resolve_backend,
)
from repro.pim.kernels import topk_rows

#: Rows of LUTs scanned per functional DC call; bounds the transient
#: ``(rows, n, M)`` gather tensor without changing results (the scan
#: and top-k are row-independent).
ROW_CHUNK = 256

#: One shard-group scan job: (luts (g, M, CB), codes (n, M), ids (n,), k).
ScanJob = Tuple[np.ndarray, np.ndarray, np.ndarray, int]
#: Per-row output of a job: [(ids_k, dists_k)] in LUT row order.
ScanRows = List[Tuple[np.ndarray, np.ndarray]]

#: Planner thresholds: minimum LUT-entry gathers in a round before the
#: pool's IPC overhead pays for itself, and minimum same-round jobs
#: before the stacked fast path beats the per-group loop.
POOL_MIN_POINTS = 1 << 16
VECTOR_MIN_JOBS = 2

#: Seconds a blocking warm-up wait (explicit ``plan="pool"``) allows
#: before degrading to the serial path.
WARMUP_TIMEOUT_S = 10.0


def scan_shard_group(
    luts: np.ndarray,
    codes: np.ndarray,
    ids: np.ndarray,
    k: int,
    row_chunk: int = ROW_CHUNK,
    backend: Optional[KernelBackend] = None,
) -> ScanRows:
    """DC + TS over one shard group, chunked over LUT rows.

    The single functional scan path: the serial executor, the worker
    processes, and :meth:`PimSystem.run_batch` all funnel through this
    function — and through the same
    :meth:`~repro.pim.backend.KernelBackend.scan_topk` selection rule —
    which is what makes parallel execution bit-exact by construction.
    ``backend=None`` resolves the process default (``auto``).
    """
    if backend is None:
        backend = resolve_backend("auto")
    rows: ScanRows = []
    for c0 in range(0, len(luts), row_chunk):
        rows.extend(backend.scan_topk(luts[c0 : c0 + row_chunk], codes, ids, k))
    return rows


def _scan_job(job: ScanJob) -> ScanRows:
    luts, codes, ids, k = job
    return scan_shard_group(luts, codes, ids, k)


#: Byte budget for one stacked DC gather tensor ``(J, g, n, M)`` in the
#: vectorized fast path; bounds transient memory without affecting
#: results (jobs are independent).
_STACK_CHUNK_BYTES = 64 * 1024 * 1024


def scan_jobs_stacked(
    jobs: Sequence[ScanJob],
    backend: Optional[KernelBackend] = None,
) -> List[ScanRows]:
    """Cross-DPU vectorized scan: same-shape jobs in single kernel calls.

    Jobs are bucketed by ``(lut shape, code shape, dtypes, k)``; each
    bucket's LUTs and codes are stacked and scanned with one
    :meth:`~repro.pim.backend.KernelBackend.scan_stacked` dispatch
    instead of J separate kernel calls — the host-side analogue of
    launching one kernel across every DPU at once. Per-job results are
    bit-identical to :func:`scan_shard_group` (the stacked gather and
    reduction are elementwise/row-independent, and clusters large
    enough for the chunked top-k path are excluded from stacking so
    every path applies the same selection rule), so this is purely a
    wall-clock strategy. Odd-shaped or oversized jobs fall back to the
    per-group scan; results come back in submission order.
    """
    if backend is None:
        backend = resolve_backend("auto")
    results: List[ScanRows] = [None] * len(jobs)  # type: ignore[list-item]
    buckets: Dict[tuple, List[int]] = {}
    for ji, (luts, codes, _ids, k) in enumerate(jobs):
        key = (luts.shape, codes.shape, luts.dtype.str, codes.dtype.str, k)
        buckets.setdefault(key, []).append(ji)
    for (lshape, cshape, _, _, k), idxs in buckets.items():
        g = lshape[0]
        n, m = cshape
        per_job = g * n * m * 8
        if (
            len(idxs) < 2
            or per_job > _STACK_CHUNK_BYTES
            or n > SCAN_TOPK_N_CHUNK
        ):
            for ji in idxs:
                luts_j, codes_j, ids_j, k_j = jobs[ji]
                results[ji] = scan_shard_group(
                    luts_j, codes_j, ids_j, k_j, backend=backend
                )
            continue
        step = max(1, _STACK_CHUNK_BYTES // max(per_job, 1))
        for c0 in range(0, len(idxs), step):
            sel = idxs[c0 : c0 + step]
            luts_s = np.stack([jobs[ji][0] for ji in sel])
            codes_s = np.stack([jobs[ji][1] for ji in sel])
            dists = backend.scan_stacked(luts_s, codes_s)
            for off, ji in enumerate(sel):
                results[ji] = topk_rows(dists[off], jobs[ji][2], k)
    return results


# ---------------------------------------------------------------------------
# Shared-memory arena + leak tracking
# ---------------------------------------------------------------------------

#: Segment names created (and thus owned) by this process, still live.
_TRACKED_SEGMENTS: set = set()
_SWEEP_REGISTERED = False


def _track_segment(name: str) -> None:
    global _SWEEP_REGISTERED
    _TRACKED_SEGMENTS.add(name)
    if not _SWEEP_REGISTERED:
        atexit.register(_sweep_segments)
        _SWEEP_REGISTERED = True


def _untrack_segment(name: str) -> None:
    _TRACKED_SEGMENTS.discard(name)


def _sweep_segments() -> None:
    """atexit last resort: unlink any segment close() never reached."""
    from multiprocessing import shared_memory

    for name in sorted(_TRACKED_SEGMENTS):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
        _untrack_segment(name)


def leaked_segment_names() -> Tuple[str, ...]:
    """Shared-memory segments this process created and has not unlinked."""
    return tuple(sorted(_TRACKED_SEGMENTS))


def assert_no_leaked_segments() -> None:
    """Raise if any arena segment created here is still linked.

    Usable from tests after ``engine.close()`` / ``pool.close()`` to
    prove the unlink guarantee holds.
    """
    leaked = leaked_segment_names()
    if leaked:
        raise AssertionError(
            f"leaked shared-memory segments: {', '.join(leaked)}"
        )


def _san_record(kind: str, segment: str, key: Optional[str] = None) -> None:
    """Report an arena lifecycle event to the drimsan recorder.

    A no-op unless :func:`repro.analysis.sanitizer.enable` armed the
    recorder in this process (the import is lazy, so the data plane
    never pays for the analysis package on un-sanitized runs).
    """
    from repro.analysis import sanitizer

    if sanitizer.active():
        sanitizer.record_event(kind, segment, key)


def _san_clock():
    """Vector-clock snapshot to piggyback on a pipe message (or None)."""
    from repro.analysis import sanitizer

    return sanitizer.clock_snapshot() if sanitizer.active() else None


def _san_merge(clock) -> None:
    """Fold a received message's clock slot into ours (None = inactive)."""
    if clock is None:
        return
    from repro.analysis import sanitizer

    sanitizer.merge_clock(clock)


def _san_spool():
    """Spool directory for worker-side events (None when disarmed)."""
    from repro.analysis import sanitizer

    return sanitizer.spool_dir() if sanitizer.active() else None


def _detach_from_resource_tracker(shm) -> None:
    """Stop a *worker-side* attach from being torn down by the tracker.

    CPython's resource tracker unlinks every shared-memory segment a
    process registered when that process exits (bpo-38119) — correct
    for owners, destructive for *spawned* workers that merely attached
    to the parent's arena (a spawned child gets its own tracker).
    Unregistering the attach leaves lifetime management to the owning
    parent (plus the atexit sweep). Forked workers share the parent's
    tracker, where the attach-side register is an idempotent no-op and
    unregistering here would instead erase the parent's own
    registration — so callers skip this under fork.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedShardArena:
    """One shared-memory segment packing every shard's codes and ids.

    Layout: arrays are copied back-to-back at 16-byte-aligned offsets;
    the manifest maps ``array key -> (offset, shape, dtype str)`` and is
    the only thing workers need (beyond the segment name) to rebuild
    zero-copy NumPy views. The creating process owns the segment and is
    responsible for :meth:`close` (which unlinks); workers attach with
    :meth:`attach` and close without unlinking.
    """

    _ALIGN = 16

    def __init__(self, shm, manifest: Dict[str, tuple], owner: bool) -> None:
        self._shm = shm
        self.manifest = manifest
        self.owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedShardArena":
        from multiprocessing import shared_memory

        manifest: Dict[str, tuple] = {}
        offset = 0
        prepared: Dict[str, np.ndarray] = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            prepared[key] = arr
            manifest[key] = (offset, arr.shape, arr.dtype.str)
            offset += arr.nbytes
            offset += (-offset) % cls._ALIGN
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        _track_segment(shm.name)
        _san_record("create", shm.name)
        for key, arr in prepared.items():
            off, shape, dtype = manifest[key]
            if arr.nbytes:
                dst = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
                dst[...] = arr
                del dst
            _san_record("write", shm.name, key)
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(
        cls, name: str, manifest: Dict[str, tuple], untrack: bool = True
    ) -> "SharedShardArena":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            if untrack:
                _detach_from_resource_tracker(shm)
            _san_record("attach", shm.name)
            return cls(shm, dict(manifest), owner=False)
        except BaseException:
            shm.close()
            raise

    def view(self, key: str) -> np.ndarray:
        """Zero-copy read-only view of one array in the segment."""
        # Recorded before any validity check so the sanitizer observes
        # even (especially) views taken against a dead mapping.
        _san_record("view", self._shm.name, key)
        off, shape, dtype = self.manifest[key]
        arr = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=off)
        arr.flags.writeable = False
        return arr

    def close(self) -> None:
        """Release the local mapping; the owner also unlinks.

        Views from :meth:`view` must be dropped first — the mapping
        goes away with the close, so a surviving view dereferences
        unmapped memory (the worker loop clears its view cache before
        closing for exactly this reason). A leaked view never blocks
        the unlink, so the no-leak guarantee holds regardless.
        """
        if self._closed:
            return
        self._closed = True
        _san_record("close", self._shm.name)
        try:
            self._shm.close()
        except BufferError:
            # Some CPython versions refuse to close a mapping with
            # exported buffers; the unlink below still detaches the
            # name so nothing leaks past process exit.
            pass
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _san_record("unlink", self._shm.name)
            _untrack_segment(self._shm.name)

    def __enter__(self) -> "SharedShardArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------

def _pool_worker(
    conn,
    arena_name: str,
    manifest: Dict[str, tuple],
    untrack: bool,
    san_spool: Optional[str] = None,
    san_clock=None,
    backend_mode: str = "auto",
) -> None:
    """Persistent worker: attach the arena once, scan until told to stop.

    Every pipe message in both directions carries a trailing
    vector-clock slot (None on un-sanitized runs); ``san_spool`` /
    ``san_clock`` arm the drimsan recorder in this process, seeded with
    the owner's clock at spawn so the arena ``publish`` is ordered
    before our ``attach``.

    The kernel backend is chosen per process from ``backend_mode`` and
    warmed (JIT compilation for compiled backends) before the warmup
    ping is answered, so the pool's ``ready()`` already implies
    compiled kernels — first queries never eat compile time. Results
    are bit-identical across backends, so a per-round override in the
    parent never needs to reach the workers.
    """
    if san_spool is not None:
        from repro.analysis import sanitizer

        sanitizer.worker_init(san_spool, san_clock)
    backend = resolve_backend(backend_mode)
    backend.warmup()
    arena = None
    views: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    try:
        arena = SharedShardArena.attach(arena_name, manifest, untrack=untrack)
        while True:
            msg = conn.recv()
            tag = msg[0]
            _san_merge(msg[-1])
            if tag == "scan":
                out: List[ScanRows] = []
                for item in msg[1]:
                    key, luts, k = item[0], item[1], item[2]
                    # Older dispatchers ship 3-tuples; a 4th slot (when
                    # present) is the live-row filter for shards with
                    # tombstones — resident arrays keep the full rows,
                    # deletions are applied at scan time.
                    live = item[3] if len(item) > 3 else None
                    pair = views.get(key)
                    if pair is None:
                        pair = (
                            arena.view(f"codes:{key}"),
                            arena.view(f"ids:{key}"),
                        )
                        views[key] = pair
                    codes, ids = pair
                    if live is not None:
                        codes = codes[live]
                        ids = ids[live]
                    out.append(
                        scan_shard_group(luts, codes, ids, k, backend=backend)
                    )
                conn.send(("rows", out, _san_clock()))
            elif tag == "ping":
                conn.send(("pong", _san_clock()))
            elif tag == "stop":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    except Exception as exc:  # pragma: no cover - defensive
        try:
            conn.send(("error", repr(exc), _san_clock()))
        except Exception:
            pass
    finally:
        if arena is not None:
            views.clear()
            arena.close()
        if san_spool is not None:
            from repro.analysis import sanitizer

            sanitizer.flush_worker_events()
        try:
            conn.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class PersistentShardPool:
    """Persistent workers with zero-copy shard residency.

    Lifecycle: :meth:`host_shards` packs every shard's codes/ids into a
    :class:`SharedShardArena`; :meth:`ensure_started` spawns the
    workers (non-blocking — each attaches the arena once and answers a
    ping when ready); :meth:`scan_groups` ships only
    ``(shard_key, luts, k)`` descriptors per round and reassembles
    results in submission order. Any failure degrades to the in-process
    serial path — bit-identical results — and records a fallback event
    for the metrics layer (:meth:`take_fallback_events`).
    """

    kind = "persistent"

    def __init__(
        self, num_workers: int, backend_mode: str = "auto"
    ) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        self.num_workers = num_workers
        #: Kernel-backend mode each worker resolves at spawn (see
        #: ``_pool_worker``): JIT warmup happens inside pool warmup.
        self.backend_mode = backend_mode
        self._arena: Optional[SharedShardArena] = None
        self._shard_keys: set = set()
        self._procs: list = []
        self._conns: list = []
        self._awaiting_pong: list = []
        self._warm = False
        self._broken = False
        self._fallback_events: List[str] = []
        # Serializes worker dispatch against teardown: close() from one
        # thread while a round is in flight on another waits the round
        # out instead of unlinking the arena under the workers.
        self._lock = threading.RLock()

    # ----- state ----------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether jobs can currently fan out to worker processes."""
        return self.num_workers > 1 and not self._broken

    @property
    def attached(self) -> bool:
        return self._arena is not None

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def ready(self) -> bool:
        """Workers are warm: spawned, attached, and answering pings."""
        return self.parallel and self.started and self._poll_warm()

    def _note_fallback(self, reason: str) -> None:
        self._fallback_events.append(reason)

    def take_fallback_events(self) -> List[str]:
        """Drain fallback reasons recorded since the last call."""
        events, self._fallback_events = self._fallback_events, []
        return events

    # ----- residency ------------------------------------------------------
    def host_shards(
        self, shards: Dict[str, Tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """(Re)build the arena from ``shard_key -> (codes, ids)``.

        Re-hosting after workers started restarts them against the new
        arena (index rebuild / late shard placement).
        """
        if self._broken:
            return
        if self.started:
            self._stop_workers()
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        arrays: Dict[str, np.ndarray] = {}
        for key, (codes, ids) in shards.items():
            arrays[f"codes:{key}"] = codes
            arrays[f"ids:{key}"] = ids
        try:
            self._arena = SharedShardArena.create(arrays)
            self._shard_keys = set(shards)
        except Exception:
            self._broken = True
            self._note_fallback("arena-create")

    # ----- worker lifecycle ----------------------------------------------
    def ensure_started(self) -> None:
        """Spawn the workers if needed; returns without waiting for warmup."""
        if self._broken or self.started or not self.parallel:
            return
        if not self.attached:
            return
        try:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
            ctx = mp.get_context(method)
            # Forked workers share the parent's resource tracker, so the
            # attach must NOT unregister (it would erase the owner's
            # registration); spawned workers have their own tracker and
            # must unregister or it unlinks the arena at worker exit.
            untrack = method != "fork"
            _san_record("publish", self._arena.name)
            for _ in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(
                        child_conn,
                        self._arena.name,
                        self._arena.manifest,
                        untrack,
                        _san_spool(),
                        _san_clock(),
                        self.backend_mode,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                parent_conn.send(("ping", _san_clock()))
                self._procs.append(proc)
                self._conns.append(parent_conn)
                self._awaiting_pong.append(parent_conn)
        except Exception:
            self._mark_broken("spawn")

    def _poll_warm(self) -> bool:
        """Non-blocking warmup check: all spawned workers answered ping."""
        if self._warm:
            return True
        if not self.started:
            return False
        still = []
        for conn in self._awaiting_pong:
            try:
                if conn.poll(0):
                    msg = conn.recv()
                    if msg[0] != "pong":
                        self._mark_broken("warmup")
                        return False
                    _san_merge(msg[-1])
                else:
                    still.append(conn)
            except (EOFError, OSError):
                self._mark_broken("worker-death")
                return False
        self._awaiting_pong = still
        self._warm = not still
        return self._warm

    def wait_warm(self, timeout_s: float = WARMUP_TIMEOUT_S) -> bool:
        """Block until the workers are warm (or the timeout expires)."""
        import time

        self.ensure_started()
        deadline = time.monotonic() + timeout_s
        while not self._poll_warm():
            if self._broken or not self.started:
                return False
            if time.monotonic() >= deadline:
                self._note_fallback("warmup-timeout")
                return False
            time.sleep(0.001)
        return True

    def _mark_broken(self, reason: str) -> None:
        self._broken = True
        self._note_fallback(reason)
        self._stop_workers()

    def _stop_workers(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop", _san_clock()))
            except Exception:
                pass
        for proc in self._procs:
            try:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            except Exception:
                pass
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
        self._awaiting_pong = []
        self._warm = False

    # ----- scanning -------------------------------------------------------
    def scan_groups(
        self,
        jobs: Sequence[ScanJob],
        keys: Optional[Sequence[str]] = None,
        lives: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[ScanRows]:
        """Run jobs (possibly on the workers); results in submission order.

        ``keys`` aligns each job with its resident shard key; workers
        receive only ``(key, luts, k, live)``. ``lives`` (when given)
        aligns each job with its live-row filter — ``None`` entries mean
        every resident row is live; non-``None`` entries are the row
        indices that survive tombstoning, applied worker-side against
        the full resident arrays. Jobs without residency (no ``keys``,
        unknown key, arena not hosted) and any pool failure fall back to
        in-process execution — the results are identical either way
        (the job arrays themselves are pre-filtered), and the fallback
        is recorded.
        """
        if not self.parallel or len(jobs) < 2:
            return [_scan_job(j) for j in jobs]
        if keys is None or len(keys) != len(jobs):
            self._note_fallback("no-residency")
            return [_scan_job(j) for j in jobs]
        if not self.attached or any(k not in self._shard_keys for k in keys):
            self._note_fallback("no-residency")
            return [_scan_job(j) for j in jobs]
        if not self.started:
            self.ensure_started()
        if not self.wait_warm():
            return [_scan_job(j) for j in jobs]
        with self._lock:
            # A concurrent close() may have torn the pool down between
            # the warmup check and here; the serial path is always safe.
            if not self._conns or not self.parallel:
                return [_scan_job(j) for j in jobs]
            # Contiguous round-robin split preserves submission order on
            # reassembly without an index shuffle.
            num = len(self._conns)
            bounds = np.linspace(0, len(jobs), num + 1).astype(int)
            try:
                sent = []
                for wi, conn in enumerate(self._conns):
                    lo, hi = bounds[wi], bounds[wi + 1]
                    if hi <= lo:
                        continue
                    payload = [
                        (
                            keys[j],
                            jobs[j][0],
                            jobs[j][3],
                            None if lives is None else lives[j],
                        )
                        for j in range(lo, hi)
                    ]
                    conn.send(("scan", payload, _san_clock()))
                    sent.append(conn)
                results: List[ScanRows] = []
                for conn in sent:
                    msg = conn.recv()
                    if msg[0] != "rows":
                        raise RuntimeError(f"worker error: {msg[1:]}")
                    _san_merge(msg[-1])
                    results.extend(msg[1])
                return results
            except Exception:
                self._mark_broken("scan-failure")
                return [_scan_job(j) for j in jobs]

    # ----- teardown -------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink the shared-memory arena.

        Safe (and idempotent) to call concurrently with an in-flight
        :meth:`scan_groups` round: the dispatch lock makes close wait
        the round out rather than unlinking the arena under the
        workers.
        """
        with self._lock:
            self._stop_workers()
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            self._shard_keys = set()

    def __enter__(self) -> "PersistentShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


class ShardExecutor:
    """Legacy per-call process pool (the PR 4 data plane).

    Re-pickles every job's shard arrays on every round; kept as the
    ``shard_pool="percall"`` option and as the baseline the
    ``bench_fig06 --smoke`` gate measures the persistent pool against.
    """

    kind = "percall"

    def __init__(self, num_workers: int) -> None:
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        self.num_workers = num_workers
        self._pool = None
        self._broken = False
        self._fallback_events: List[str] = []

    @property
    def parallel(self) -> bool:
        """Whether jobs currently fan out to worker processes."""
        return self.num_workers > 1 and not self._broken

    def ready(self) -> bool:
        """Per-call pools have no warmup: ready whenever parallel."""
        return self.parallel

    def ensure_started(self) -> None:
        self._ensure_pool()

    def _note_fallback(self, reason: str) -> None:
        self._fallback_events.append(reason)

    def take_fallback_events(self) -> List[str]:
        """Drain fallback reasons recorded since the last call."""
        events, self._fallback_events = self._fallback_events, []
        return events

    def _ensure_pool(self):
        if self._pool is None and not self._broken:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
            except Exception:
                self._broken = True
                self._note_fallback("pool-create")
        return self._pool

    def scan_groups(
        self,
        jobs: Sequence[ScanJob],
        keys: Optional[Sequence[str]] = None,
        lives: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[ScanRows]:
        """Run jobs (possibly in parallel); results in submission order.

        Falls back to in-process execution when the pool is disabled,
        cannot be created, or dies mid-flight — the results are
        identical either way. ``keys`` and ``lives`` are accepted for
        interface parity with :class:`PersistentShardPool` and ignored
        (this pool ships the full, already-filtered arrays regardless).
        """
        if not self.parallel or len(jobs) < 2:
            return [_scan_job(j) for j in jobs]
        pool = self._ensure_pool()
        if pool is None:
            return [_scan_job(j) for j in jobs]
        try:
            return list(pool.map(_scan_job, jobs))
        except Exception:
            # Broken pool (killed worker, pickling failure, sandbox
            # restriction): degrade permanently to serial.
            self._broken = True
            self._note_fallback("scan-failure")
            self.close()
            return [_scan_job(j) for j in jobs]

    def close(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None


def make_executor(
    shard_workers: int,
    shard_pool: str = "persistent",
    kernel_backend: str = "auto",
):
    """Build the configured executor (None when workers are disabled).

    ``kernel_backend`` is pinned per worker process at spawn by the
    persistent pool; the legacy per-call pool's workers always resolve
    ``auto`` (its jobs go through :func:`_scan_job`), which is
    bit-identical anyway.
    """
    if shard_pool not in ("persistent", "percall"):
        raise ValueError(
            f"shard_pool must be 'persistent' or 'percall', got {shard_pool!r}"
        )
    if shard_workers <= 1:
        return None
    if shard_pool == "percall":
        return ShardExecutor(shard_workers)
    return PersistentShardPool(shard_workers, backend_mode=kernel_backend)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

#: Multiplier on :data:`POOL_MIN_POINTS` while the in-process backend
#: is compiled and no per-path throughput has been measured yet: a
#: compiled scan closes most of the gap the pool's parallelism buys,
#: so the IPC overhead only pays off on much larger rounds. Once both
#: paths have measured rates, the measurements decide instead.
COMPILED_POOL_FACTOR = 8

#: EMA weight of the newest measured round rate (points/second).
_THROUGHPUT_EMA = 0.3


@dataclass
class ExecutionPlanner:
    """Per-round choice between serial, vectorized, compiled, and pool.

    The choice is a pure wall-clock strategy: every path produces
    bit-identical results and charges identical cycles, so the planner
    is free to pick from measured round size, worker warmup state, and
    the active kernel backend. Heuristics (``plan="auto"``):

    * a warm pool takes rounds with at least :data:`POOL_MIN_POINTS`
      LUT-entry gathers and two or more shard groups — below that, IPC
      overhead dominates. With a compiled in-process backend the floor
      rises by :data:`COMPILED_POOL_FACTOR` until measured per-path
      throughput (fed back via :meth:`note_round`) settles the contest
      empirically;
    * a configured-but-cold pool is warmed in the background while the
      round runs in-process (no round ever blocks on worker spawn);
    * the stacked in-process path takes fault-free rounds with at
      least :data:`VECTOR_MIN_JOBS` groups — labeled ``"compiled"``
      when the active backend is a compiled one, ``"vectorized"``
      otherwise (same dispatch, different kernels); fault-plan rounds
      keep the per-DPU serial traversal (conservative, and retries
      stay easy to reason about);
    * everything else runs serial.

    Explicit modes force their path, degrading one step (pool →
    vectorized → serial) when the forced path is unavailable.
    """

    decisions: Dict[str, int] = field(default_factory=dict)
    #: Measured LUT-entry gathers per second, EMA per decision path.
    throughput: Dict[str, float] = field(default_factory=dict)

    def note_round(
        self, path: str, scan_points: int, seconds: float
    ) -> None:
        """Feed back one round's measured scan rate for ``path``."""
        if scan_points <= 0 or seconds <= 0:
            return
        rate = scan_points / seconds
        prev = self.throughput.get(path)
        if prev is None:
            self.throughput[path] = rate
        else:
            self.throughput[path] = (
                (1.0 - _THROUGHPUT_EMA) * prev + _THROUGHPUT_EMA * rate
            )

    def choose(
        self,
        mode: str,
        *,
        num_jobs: int,
        scan_points: int,
        executor=None,
        fault_active: bool = False,
        backend=None,
    ) -> str:
        path = self._choose(
            mode,
            num_jobs=num_jobs,
            scan_points=scan_points,
            executor=executor,
            fault_active=fault_active,
            backend=backend,
        )
        self.decisions[path] = self.decisions.get(path, 0) + 1
        return path

    def _choose(
        self, mode, *, num_jobs, scan_points, executor, fault_active, backend
    ) -> str:
        can_vector = not fault_active and num_jobs >= VECTOR_MIN_JOBS
        compiled = backend is not None and getattr(backend, "compiled", False)
        inproc = "compiled" if compiled else "vectorized"
        if mode == "serial":
            return "serial"
        if mode == "vectorized":
            return "vectorized" if can_vector else "serial"
        if mode == "pool":
            if executor is not None and executor.parallel and num_jobs >= 2:
                return "pool"
            return inproc if can_vector else "serial"
        # auto
        if executor is not None and executor.parallel and num_jobs >= 2:
            if executor.ready():
                t_pool = self.throughput.get("pool")
                t_in = self.throughput.get(inproc)
                if t_pool is not None and t_in is not None:
                    # Both paths measured: let the rates arbitrate
                    # (still gated on the base floor — tiny rounds are
                    # all IPC no matter what the EMA says).
                    if t_pool > t_in and scan_points >= POOL_MIN_POINTS:
                        return "pool"
                else:
                    min_points = POOL_MIN_POINTS * (
                        COMPILED_POOL_FACTOR if compiled else 1
                    )
                    if scan_points >= min_points:
                        return "pool"
            else:
                # Warm the workers in the background; this round keeps
                # moving on the in-process paths.
                executor.ensure_started()
        if can_vector:
            return inproc
        return "serial"
