"""UPMEM DRAM-PIM system model.

The paper runs on a real UPMEM server; no PIM hardware exists here, so
this package is the substituted substrate: a **functional + analytic-
timing simulator** of an UPMEM-style DIMM-PIM system.

Functional: every kernel computes real numeric results over the data
resident in each simulated DPU's MRAM, so accuracy (recall) measured on
the simulator is genuine, not modeled.

Timing: kernels report instruction counts by class and MRAM/WRAM
traffic; :class:`~repro.pim.dpu.Dpu` converts these to cycles using the
published UPMEM characteristics (450 MHz, in-order pipeline that
sustains ~1 instruction/cycle once ≥11 tasklets are resident, 32-cycle
software multiplication, DMA-based MRAM access with sequential/random
bandwidth derating — Gómez-Luna et al., IEEE Access 2022, the paper's
ref [19]). A PIM batch finishes when the *slowest* DPU finishes,
matching UPMEM's host-synchronous execution model that drives the
paper's load-balancing work.
"""

from repro.pim.config import DpuConfig, PimSystemConfig, TransferConfig
from repro.pim.isa import InstructionMix, IsaCostModel
from repro.pim.memory import MemoryTraffic, Mram, Wram
from repro.pim.dpu import Dpu, KernelCost
from repro.pim.transfer import HostTransferModel, TransferEvent
from repro.pim.system import PimSystem, BatchTiming
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.trace import TraceEvent, Tracer

__all__ = [
    "DpuConfig",
    "PimSystemConfig",
    "TransferConfig",
    "InstructionMix",
    "IsaCostModel",
    "MemoryTraffic",
    "Mram",
    "Wram",
    "Dpu",
    "KernelCost",
    "HostTransferModel",
    "TransferEvent",
    "PimSystem",
    "BatchTiming",
    "EnergyModel",
    "EnergyReport",
    "TraceEvent",
    "Tracer",
]
