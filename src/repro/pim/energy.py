"""Energy model (paper Fig. 9).

The paper measures energy with Intel RAPL on the CPU baseline and
derives the UPMEM server's power from the per-DIMM figure (13.92 W per
PIM-DIMM, §V-B). With measured power unavailable here, energy is
``power x modeled time``:

* PIM side: DIMM power for the active DIMMs plus the host CPU which
  orchestrates (idle-ish during DPU execution);
* CPU baseline: package + DRAM power under load.

Defaults follow the paper's platforms (Xeon Gold 5218, 125 W TDP,
dual-socket baseline server; UPMEM host Xeon Silver 4216).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pim.config import PimSystemConfig


@dataclass(frozen=True)
class EnergyReport:
    """Joules and derived efficiency for one workload run."""

    seconds: float
    watts: float
    label: str

    @property
    def joules(self) -> float:
        return self.seconds * self.watts

    def queries_per_joule(self, num_queries: int) -> float:
        if self.joules <= 0:
            raise ValueError("non-positive energy")
        return num_queries / self.joules


@dataclass(frozen=True)
class EnergyModel:
    """Power parameters for both platforms.

    ``mram_gating`` models the paper's forward-looking note (§V-B):
    "the energy efficiency of DRIM-ANN would be further improved if
    dynamic gating of unused UPMEM MRAM were supported." With gating
    on, the MRAM-array share of DIMM power scales with the fraction of
    MRAM actually holding live data; the logic/DPU share stays fixed.
    """

    cpu_package_watts: float = 125.0  # Xeon Gold 5218 TDP
    cpu_sockets: int = 2
    cpu_dram_watts: float = 35.0  # loaded DDR4 power, RAPL DRAM domain
    pim_host_package_watts: float = 100.0  # Xeon Silver 4216 TDP
    pim_host_active_fraction: float = 0.5  # host mostly waits on DPUs
    mram_gating: bool = False
    # Share of DIMM power drawn by the DRAM arrays (gateable); the rest
    # is DPU logic + interface, always on.
    mram_power_share: float = 0.6

    def cpu_power(self) -> float:
        """Baseline server power under ANNS load."""
        return self.cpu_sockets * self.cpu_package_watts + self.cpu_dram_watts

    def pim_power(
        self,
        config: PimSystemConfig,
        mram_utilization: Optional[float] = None,
    ) -> float:
        """UPMEM server power: PIM DIMMs + (partially busy) host.

        ``mram_utilization`` in [0, 1] is the live-data fraction of
        MRAM (from ``PimSystem.mram_usage()``); only used when
        ``mram_gating`` is enabled.
        """
        dimm = config.total_power_watts
        if self.mram_gating:
            if mram_utilization is None:
                raise ValueError(
                    "mram_gating requires mram_utilization (0..1)"
                )
            if not 0.0 <= mram_utilization <= 1.0:
                raise ValueError(
                    f"mram_utilization must be in [0, 1], got {mram_utilization}"
                )
            gated = self.mram_power_share * (1.0 - mram_utilization)
            dimm = dimm * (1.0 - gated)
        return dimm + self.pim_host_active_fraction * self.pim_host_package_watts

    def cpu_run(self, seconds: float) -> EnergyReport:
        return EnergyReport(seconds=seconds, watts=self.cpu_power(), label="cpu")

    def pim_run(
        self,
        seconds: float,
        config: PimSystemConfig,
        mram_utilization: Optional[float] = None,
    ) -> EnergyReport:
        return EnergyReport(
            seconds=seconds,
            watts=self.pim_power(config, mram_utilization),
            label="pim",
        )
