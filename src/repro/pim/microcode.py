"""Instruction-level micro-interpreter for kernel-cost validation.

The analytic :class:`~repro.pim.isa.InstructionMix` counts that the
kernels report are *claims* about what a DPU tasklet would execute.
This module backs those claims: it provides a tiny register machine
with the UPMEM-relevant instruction classes and hand-written micro
programs for the inner loops of the RC/LC/DC kernels. Executing a
micro program on real (small) inputs counts instructions *by running
them one at a time*; the test suite asserts these measured counts match
the kernels' analytic mixes exactly.

This is deliberately a validation tool, not a performance path: the
interpreter is thousands of times slower than the vectorized kernels
and is only ever run on tiny shapes.

Instruction classes mirror ``IsaCostModel``: ``add`` (add/sub/acc),
``mul`` (32-bit multiply — one logical instruction here; the 32-cycle
cost lives in the ISA table), ``load``/``store`` (WRAM), ``compare``,
``control`` (loop/address bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.square_lut import SquareLut
from repro.pim.isa import InstructionMix


@dataclass
class MicroMachine:
    """Counts instructions as helper methods execute them."""

    counts: InstructionMix = field(default_factory=InstructionMix)

    # -- arithmetic -----------------------------------------------------
    def add(self, a: int, b: int) -> int:
        self.counts.add += 1
        return a + b

    def sub(self, a: int, b: int) -> int:
        self.counts.add += 1  # sub shares the adder
        return a - b

    def mul(self, a: int, b: int) -> int:
        self.counts.mul += 1
        return a * b

    def compare(self, a: int, b: int) -> bool:
        self.counts.compare += 1
        return a < b

    # -- memory ----------------------------------------------------------
    def load(self, array: np.ndarray, index: int) -> int:
        self.counts.load += 1
        return int(array[index])

    def store(self, array: np.ndarray, index: int, value: int) -> None:
        self.counts.store += 1
        array[index] = value

    # -- bookkeeping -------------------------------------------------------
    def control(self, n: int = 1) -> None:
        self.counts.control += n


def run_rc_micro(
    machine: MicroMachine, query: np.ndarray, centroid: np.ndarray
) -> np.ndarray:
    """RC inner loop: residual[d] = query[d] - centroid[d].

    Per dim: load query, load centroid, subtract, store.
    """
    d = len(query)
    out = np.zeros(d, dtype=np.int64)
    for i in range(d):
        q = machine.load(query, i)
        c = machine.load(centroid, i)
        r = machine.sub(q, c)
        machine.store(out, i, r)
    return out


def run_lc_micro(
    machine: MicroMachine,
    residual: np.ndarray,
    codebooks: np.ndarray,
    square_lut: Optional[SquareLut] = None,
) -> np.ndarray:
    """LC inner loop: lut[m, e] = sum_d (residual - codebook)^2.

    Per (m, e, d): subtract + square (mul or square-LUT load) +
    accumulate; per (m, e): one LUT store and one loop-bookkeeping op.
    Loads of the residual/codebook operands are *not* counted — they
    stream via DMA and are charged as MRAM traffic by the kernel, the
    same split the analytic mix uses.
    """
    m, cb, dsub = codebooks.shape
    out = np.zeros((m, cb), dtype=np.int64)
    table = square_lut.table if square_lut is not None else None
    offset = square_lut.max_abs if square_lut is not None else 0
    flat = out.reshape(-1)
    for j in range(m):
        for e in range(cb):
            acc = 0
            for d in range(dsub):
                diff = machine.sub(
                    int(residual[j * dsub + d]), int(codebooks[j, e, d])
                )
                if table is not None:
                    sq = machine.load(table, diff + offset)
                else:
                    sq = machine.mul(diff, diff)
                acc = machine.add(acc, sq)
            machine.store(flat, j * cb + e, acc)
            machine.control()
    return out


def run_dc_micro(
    machine: MicroMachine, lut: np.ndarray, codes: np.ndarray
) -> np.ndarray:
    """DC inner loop: dist[i] = sum_j lut[j, codes[i, j]].

    Per (point, sub-space): one address computation (control), one WRAM
    gather (load); per point: M-1 accumulates.
    """
    n, m = codes.shape
    out = np.zeros(n, dtype=np.int64)
    flat = lut.reshape(-1)
    cb = lut.shape[1]
    for i in range(n):
        acc = None
        for j in range(m):
            machine.control()  # address: j * CB + code
            v = machine.load(flat, j * cb + int(codes[i, j]))
            acc = v if acc is None else machine.add(acc, v)
        out[i] = acc
    return out
