"""DPU-local memory: 64 MB MRAM and 64 KB WRAM.

``Mram`` is a real byte-budgeted object store — the layout optimizer
must fit each DPU's clusters (codes + centroids + duplicated clusters)
in 64 MB, exactly the constraint that bounds the paper's duplication
study (Fig. 12(b) reports the MB-per-DPU cost of replicas).

``MemoryTraffic`` accumulates the bytes a kernel moved, split into
sequential streams (cluster code scans) and random transactions (LUT
gathers), which the DPU timing model prices differently — the paper
notes random access reaches only ~63% of peak MRAM bandwidth and that
this is why the square-LUT speedup on LC is 1.93x rather than 32x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


class CapacityError(RuntimeError):
    """Raised when an allocation would exceed a memory's capacity."""


@dataclass
class MemoryTraffic:
    """Byte counters for one kernel execution on one DPU."""

    sequential_read: float = 0.0
    sequential_write: float = 0.0
    random_read: float = 0.0
    random_write: float = 0.0
    # Number of discrete DMA transactions (each pays setup latency).
    transactions: float = 0.0

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        return MemoryTraffic(
            sequential_read=self.sequential_read + other.sequential_read,
            sequential_write=self.sequential_write + other.sequential_write,
            random_read=self.random_read + other.random_read,
            random_write=self.random_write + other.random_write,
            transactions=self.transactions + other.transactions,
        )

    def total_bytes(self) -> float:
        return (
            self.sequential_read
            + self.sequential_write
            + self.random_read
            + self.random_write
        )


class _BudgetedStore:
    """Named-object store with a hard byte budget."""

    def __init__(self, capacity_bytes: int, label: str) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"{label} capacity must be > 0")
        self.capacity_bytes = int(capacity_bytes)
        self.label = label
        self._objects: Dict[str, np.ndarray] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def store(self, key: str, array: np.ndarray) -> None:
        """Insert or replace an object; raises CapacityError if it won't fit."""
        array = np.asarray(array)
        delta = array.nbytes - (
            self._objects[key].nbytes if key in self._objects else 0
        )
        if self._used + delta > self.capacity_bytes:
            raise CapacityError(
                f"{self.label}: storing {key!r} needs {delta} more bytes, "
                f"only {self.free_bytes} free of {self.capacity_bytes}"
            )
        self._objects[key] = array
        self._used += delta

    def load(self, key: str) -> np.ndarray:
        if key not in self._objects:
            raise KeyError(f"{self.label}: no object {key!r}")
        return self._objects[key]

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise KeyError(f"{self.label}: no object {key!r}")
        self._used -= self._objects.pop(key).nbytes

    def keys(self):
        return self._objects.keys()

    def clear(self) -> None:
        self._objects.clear()
        self._used = 0


class Mram(_BudgetedStore):
    """64 MB (default) main DPU memory holding cluster data."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024) -> None:
        super().__init__(capacity_bytes, "MRAM")


class Wram(_BudgetedStore):
    """64 KB working memory: LUTs, heaps, staging buffers."""

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        super().__init__(capacity_bytes, "WRAM")
