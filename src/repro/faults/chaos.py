"""Chaos harness: sweep fault rates, measure what survives.

The availability story of the fault layer is a claim, and this module
is the experiment that checks it. For each fail-stop rate in a sweep it
builds an engine over the same quantized index, injects a seeded
:class:`~repro.faults.plan.FaultPlan`, runs a query batch, and compares
against the fault-free gold standard
(:meth:`~repro.core.quantized.QuantizedIndexData.reference_search`,
which the engine matches bit-exactly when healthy):

* **recall@k** of the faulty run against the fault-free results —
  with cluster duplication on, losing a DPU should cost (near) nothing
  because every shard has a live replica;
* **exactness** — whether ids and distances still match the gold run
  bit-for-bit (true whenever every probed cluster kept >= 1 live
  replica per part);
* **availability / degraded fraction** — queries served at full
  coverage vs. with clusters silently dropped;
* **latency** — e2e and p99 per-batch PIM time, showing the cost of
  retries, backoff, and stragglers.

Everything is seeded: two calls with the same :class:`ChaosConfig`
produce byte-identical reports (the determinism test relies on it).

Not imported by ``repro.faults.__init__`` — this module pulls in the
whole engine stack, while ``repro.core`` imports the fault primitives.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ann.recall import recall_at_k
from repro.core.config import EngineConfig
from repro.core.engine import DrimAnnEngine
from repro.core.layout import LayoutConfig
from repro.core.params import IndexParams, SearchParams
from repro.core.quantized import QuantizedIndexData, build_quantized_index
from repro.ann.ivfpq import IVFPQIndex
from repro.data.synthetic import SyntheticSpec, make_clustered_dataset
from repro.faults.plan import FaultConfig, FaultPlan
from repro.pim.config import PimSystemConfig


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos sweep: workload shape + fault rates to visit."""

    num_dpus: int = 64
    num_vectors: int = 4096
    dim: int = 32
    num_queries: int = 64
    nlist: int = 64
    nprobe: int = 8
    k: int = 10
    num_subspaces: int = 8
    codebook_size: int = 256
    # Fail-stop fractions to sweep (0.0 gives the in-sweep control arm).
    fail_stop_rates: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)
    # Held constant across the sweep.
    straggler_fraction: float = 0.0
    transient_rate: float = 0.0
    transfer_timeout_rate: float = 0.0
    fail_stop_max_batch: int = 0  # crash at batch 0: worst case for coverage
    # Replicate clusters (max_copies=2)? The no-duplication arm is the
    # ablation that shows *why* failover needs replicas.
    duplicate: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fail_stop_rates:
            raise ValueError("fail_stop_rates must be non-empty")
        for r in self.fail_stop_rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"fail-stop rate {r} not in [0, 1]")

    @classmethod
    def smoke(cls, *, duplicate: bool = True, seed: int = 0) -> "ChaosConfig":
        """A seconds-scale sweep for CI."""
        return cls(
            num_dpus=32,
            num_vectors=2048,
            dim=16,
            num_queries=32,
            nlist=32,
            nprobe=4,
            num_subspaces=4,
            fail_stop_rates=(0.0, 0.05),
            duplicate=duplicate,
            seed=seed,
        )


@dataclass
class ChaosPoint:
    """Measurements at one fail-stop rate."""

    fail_stop_fraction: float
    dead_dpus: int
    recall: float  # vs the fault-free gold run, @k
    exact: bool  # ids AND distances bit-identical to gold
    availability: float
    degraded_fraction: float
    task_retries: int
    transient_faults: int
    transfer_timeouts: int
    e2e_ms: float
    p99_batch_ms: float

    def row(self) -> str:
        flag = "exact" if self.exact else "     "
        return (
            f"{self.fail_stop_fraction:7.1%} {self.dead_dpus:5d} "
            f"{self.recall:8.4f} {flag} {self.availability:7.1%} "
            f"{self.degraded_fraction:9.1%} {self.task_retries:8d} "
            f"{self.e2e_ms:9.3f} {self.p99_batch_ms:9.3f}"
        )


@dataclass
class ChaosReport:
    """Full sweep output."""

    config: ChaosConfig
    points: List[ChaosPoint] = field(default_factory=list)

    def point_at(self, rate: float) -> ChaosPoint:
        for p in self.points:
            if p.fail_stop_fraction == rate:
                return p
        raise KeyError(f"no chaos point at fail-stop rate {rate}")

    def to_dict(self) -> dict:
        return {
            "config": asdict(self.config),
            "points": [asdict(p) for p in self.points],
        }

    def summary(self) -> str:
        dup = "on" if self.config.duplicate else "off"
        lines = [
            f"chaos sweep: {self.config.num_dpus} DPUs, "
            f"{self.config.num_queries} queries, duplication {dup}, "
            f"seed {self.config.seed}",
            "   fail  dead   recall@k       avail  degraded  retries"
            "    e2e_ms    p99_ms",
        ]
        lines.extend(p.row() for p in self.points)
        return "\n".join(lines)


def run_chaos(
    config: ChaosConfig = ChaosConfig(),
    *,
    prebuilt_quantized: Optional[QuantizedIndexData] = None,
) -> ChaosReport:
    """Run the sweep. Deterministic for a fixed ``config``.

    ``prebuilt_quantized`` (e.g. loaded with
    :func:`repro.core.persist.load_index`) skips the training step; its
    geometry must match ``config``, and the synthetic query stream is
    still generated from ``config``'s workload shape.
    """
    ds = make_clustered_dataset(
        SyntheticSpec(
            num_vectors=config.num_vectors,
            dim=config.dim,
            num_components=min(config.nlist, 64),
        ),
        num_queries=config.num_queries,
        seed=config.seed,
    )
    params = IndexParams(
        nlist=config.nlist,
        nprobe=config.nprobe,
        k=config.k,
        num_subspaces=config.num_subspaces,
        codebook_size=config.codebook_size,
    )
    # Train once; every sweep point reuses the same quantized index so
    # the only variable between points is the fault plan.
    if prebuilt_quantized is not None:
        for name, want in (
            ("nlist", params.nlist),
            ("dim", config.dim),
            ("num_subspaces", params.num_subspaces),
            ("codebook_size", params.codebook_size),
        ):
            got = int(getattr(prebuilt_quantized, name))
            if got != int(want):
                raise ValueError(
                    f"prebuilt index {name}={got} does not match the chaos "
                    f"config ({name}={want})"
                )
        quantized = prebuilt_quantized
    else:
        index = IVFPQIndex.build(
            ds.base,
            nlist=params.nlist,
            num_subspaces=params.num_subspaces,
            codebook_size=params.codebook_size,
            seed=config.seed,
        )
        quantized = build_quantized_index(index)
    gold = quantized.reference_search(ds.queries, params.k, params.nprobe)

    system_config = PimSystemConfig(
        num_dpus=config.num_dpus,
        dpus_per_rank=min(config.num_dpus, 64),
    )
    layout_config = LayoutConfig(max_copies=2 if config.duplicate else 0)

    report = ChaosReport(config=config)
    for rate in config.fail_stop_rates:
        plan = FaultPlan.generate(
            config.num_dpus,
            FaultConfig(
                fail_stop_fraction=rate,
                fail_stop_max_batch=config.fail_stop_max_batch,
                straggler_fraction=config.straggler_fraction,
                transient_rate=config.transient_rate,
                transfer_timeout_rate=config.transfer_timeout_rate,
            ),
            seed=config.seed,
        )
        engine = DrimAnnEngine.from_config(
            ds.base,
            EngineConfig(
                index=params,
                search=SearchParams(),
                system=system_config,
                layout=layout_config,
                faults=plan,
            ),
            prebuilt_quantized=quantized,
            seed=config.seed,
        )
        result, bd = engine.search(ds.queries)
        stats = bd.faults
        exact = bool(
            np.array_equal(result.ids, gold.ids)
            and np.array_equal(result.distances, gold.distances)
        )
        report.points.append(
            ChaosPoint(
                fail_stop_fraction=rate,
                dead_dpus=len(stats.dead_dpus),
                recall=recall_at_k(result.ids, gold.ids, params.k),
                exact=exact,
                availability=stats.availability,
                degraded_fraction=stats.degraded_fraction,
                task_retries=stats.task_retries,
                transient_faults=stats.transient_faults,
                transfer_timeouts=stats.transfer_timeouts,
                e2e_ms=bd.e2e_seconds * 1e3,
                p99_batch_ms=bd.batch_latency_percentile(99) * 1e3,
            )
        )
    return report
