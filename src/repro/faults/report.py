"""Fault/recovery accounting for one engine run.

:class:`FaultStats` rides on
:class:`~repro.core.breakdown.TimingBreakdown` (``breakdown.faults``)
so the engine's two-tuple ``search`` API is unchanged: callers that
care about degradation read the stats, callers that don't see identical
behavior. "Degraded" means at least one probed (query, cluster) task
had no surviving replica and was dropped — the engine returns the
partial top-k it could compute instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class FaultStats:
    """Observed faults and the recovery work they caused."""

    dead_dpus: Set[int] = field(default_factory=set)  # observed fail-stops
    straggler_dpus: Set[int] = field(default_factory=set)
    transient_faults: int = 0  # kernel retries on the same DPU
    transfer_timeouts: int = 0  # gathers retried after a timeout
    task_retries: int = 0  # (query, shard) tasks re-dispatched
    redispatch_rounds: int = 0  # failover batches executed
    backoff_seconds: float = 0.0  # host-side retry backoff charged
    uncovered: Set[Tuple[int, int]] = field(default_factory=set)  # (query, cluster)
    coverage_by_query: Dict[int, float] = field(default_factory=dict)
    num_queries: int = 0

    @property
    def degraded(self) -> bool:
        """True when at least one probed cluster could not be served."""
        return bool(self.uncovered)

    @property
    def degraded_queries(self) -> List[int]:
        return sorted({q for q, _ in self.uncovered})

    @property
    def degraded_fraction(self) -> float:
        if self.num_queries <= 0:
            return 0.0
        return len(self.degraded_queries) / self.num_queries

    @property
    def availability(self) -> float:
        """Fraction of queries served at full coverage."""
        return 1.0 - self.degraded_fraction

    def coverage(self, query_index: int) -> float:
        """Fraction of the query's probed clusters that were served."""
        return self.coverage_by_query.get(query_index, 1.0)

    def finalize(self, num_queries: int, nprobe: int) -> None:
        """Compute per-query coverage from the uncovered task set."""
        self.num_queries = num_queries
        lost: Dict[int, Set[int]] = {}
        for q, cid in sorted(self.uncovered):
            lost.setdefault(q, set()).add(cid)
        self.coverage_by_query = {
            q: 1.0 - len(cids) / max(nprobe, 1) for q, cids in lost.items()
        }

    def to_dict(self) -> dict:
        """JSON-safe form (sets become sorted lists)."""
        return {
            "dead_dpus": sorted(self.dead_dpus),
            "straggler_dpus": sorted(self.straggler_dpus),
            "transient_faults": self.transient_faults,
            "transfer_timeouts": self.transfer_timeouts,
            "task_retries": self.task_retries,
            "redispatch_rounds": self.redispatch_rounds,
            "backoff_seconds": self.backoff_seconds,
            "uncovered": sorted([q, c] for q, c in self.uncovered),
            "degraded_queries": self.degraded_queries,
            "num_queries": self.num_queries,
            "availability": self.availability,
            "coverage_by_query": {
                str(q): cov
                for q, cov in sorted(self.coverage_by_query.items())
            },
        }

    def summary(self) -> str:
        if not (
            self.dead_dpus
            or self.straggler_dpus
            or self.transient_faults
            or self.transfer_timeouts
            or self.uncovered
        ):
            return "no faults observed"
        return (
            f"{len(self.dead_dpus)} dead DPUs, "
            f"{len(self.straggler_dpus)} stragglers, "
            f"{self.transient_faults} transient faults, "
            f"{self.transfer_timeouts} transfer timeouts; "
            f"{self.task_retries} tasks re-dispatched over "
            f"{self.redispatch_rounds} rounds "
            f"(+{self.backoff_seconds * 1e3:.2f} ms backoff); "
            f"{len(self.degraded_queries)}/{self.num_queries} queries degraded "
            f"(availability {self.availability:.1%})"
        )
