"""Fault injection and fault tolerance for the simulated PIM.

* :mod:`repro.faults.plan` — seeded, deterministic fault schedules
  (fail-stop crashes, stragglers, transient kernel faults, transfer
  timeouts);
* :mod:`repro.faults.disk` — storage-fault injection for the durable
  index lifecycle (crash-mid-save windows);
* :mod:`repro.faults.report` — per-run fault/recovery accounting;
* :mod:`repro.faults.chaos` — the chaos harness behind ``repro chaos``
  (imported explicitly — it depends on :mod:`repro.core`, which in
  turn imports the two modules above).

See ``docs/fault_tolerance.md`` for the fault taxonomy and recovery
semantics.
"""

from repro.faults.disk import CrashPoint, SimulatedCrash
from repro.faults.plan import (
    FaultConfig,
    FaultPlan,
    NodeFaultConfig,
    NodeFaultPlan,
)
from repro.faults.report import FaultStats

__all__ = [
    "CrashPoint",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "NodeFaultConfig",
    "NodeFaultPlan",
    "SimulatedCrash",
]
