"""Deterministic fault injection plans for the simulated PIM.

A production deployment of the paper's 2,530-DPU platform (its RAG
serving motivation) cannot assume every DPU is healthy: UpANNS reports
per-DPU frequency variability on real UPMEM boards, ranks drop off the
bus, and host<->PIM DMA occasionally times out. This module models four
fault classes:

* **fail-stop** — a DPU crashes at the start of a given batch and never
  comes back; every task assigned to it from that batch on is lost and
  must fail over to a surviving replica;
* **straggler** — a DPU runs at a derated clock (``frequency * derate``)
  for the whole run, so the host-synchronous batch time becomes
  ``max_i(cycles_i / f_i)`` instead of sharing one clock;
* **transient kernel fault** — one kernel-chain execution on a DPU
  produces garbage and is retried on the same DPU after a modeled
  backoff (results come from the retry, so numerics are unchanged);
* **transfer timeout** — a host<->PIM results gather times out once and
  is retried, charging the timeout plus the repeated transfer.

Everything is **pre-drawn** at plan construction from one seed:
injection is a pure table lookup at execution time, so a run is
bit-reproducible regardless of scheduling order, and two runs with the
same seed see byte-identical fault sequences (the chaos harness and the
property tests rely on this).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.utils import BackoffPolicy, ensure_rng


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs (rates are fractions / probabilities)."""

    # Fraction of DPUs that fail-stop; each draws a crash batch
    # uniformly from [0, fail_stop_max_batch].
    fail_stop_fraction: float = 0.0
    fail_stop_max_batch: int = 4
    # Fraction of DPUs running derated, and the derate factor range
    # (effective frequency = frequency * derate).
    straggler_fraction: float = 0.0
    straggler_derate: Tuple[float, float] = (0.4, 0.9)
    # Per-(DPU, batch) probability of one transient kernel fault.
    transient_rate: float = 0.0
    # Per-batch probability that the results gather times out once.
    transfer_timeout_rate: float = 0.0
    # Batches for which transient/timeout events are pre-drawn; beyond
    # the horizon no further transients or timeouts fire.
    horizon_batches: int = 256
    # Modeled delays.
    transient_backoff_s: float = 50e-6  # on-DPU wait before a kernel retry
    transfer_timeout_s: float = 1e-3  # wasted time per timed-out gather
    retry_backoff_s: float = 100e-6  # host-side base for failover backoff
    # Failover re-dispatch attempts before a task is declared uncovered.
    max_redispatch_attempts: int = 3

    def __post_init__(self) -> None:
        for name in ("fail_stop_fraction", "straggler_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        for name in ("transient_rate", "transfer_timeout_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        lo, hi = self.straggler_derate
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(
                f"straggler_derate must satisfy 0 < lo <= hi <= 1, got {self.straggler_derate}"
            )
        if self.fail_stop_max_batch < 0:
            raise ValueError("fail_stop_max_batch must be >= 0")
        if self.horizon_batches < 1:
            raise ValueError("horizon_batches must be >= 1")
        for name in ("transient_backoff_s", "transfer_timeout_s", "retry_backoff_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.max_redispatch_attempts < 1:
            raise ValueError("max_redispatch_attempts must be >= 1")

    def backoff_policy(self) -> BackoffPolicy:
        """The failover backoff schedule (see :mod:`repro.utils.backoff`)."""
        return BackoffPolicy(base_s=self.retry_backoff_s, multiplier=2.0)


@dataclass(frozen=True)
class FaultPlan:
    """A fully pre-drawn fault schedule for one run.

    Build with :meth:`generate` (seeded) or :meth:`none` (benign).
    """

    num_dpus: int
    config: FaultConfig
    fail_at_batch: Dict[int, int] = field(default_factory=dict)  # dpu -> batch
    derates: np.ndarray = field(default_factory=lambda: np.ones(0))  # (num_dpus,)
    transients: FrozenSet[Tuple[int, int]] = frozenset()  # (dpu, batch)
    transfer_timeouts: FrozenSet[int] = frozenset()  # batch indices

    def __post_init__(self) -> None:
        if self.num_dpus <= 0:
            raise ValueError("num_dpus must be > 0")
        derates = np.asarray(self.derates, dtype=np.float64)
        if derates.shape != (self.num_dpus,):
            derates = np.ones(self.num_dpus)
        if np.any(derates <= 0) or np.any(derates > 1):
            raise ValueError("derates must be in (0, 1]")
        object.__setattr__(self, "derates", derates)
        for dpu, batch in self.fail_at_batch.items():
            if not 0 <= dpu < self.num_dpus:
                raise ValueError(f"fail-stop dpu {dpu} out of range [0, {self.num_dpus})")
            if batch < 0:
                raise ValueError(f"fail batch must be >= 0, got {batch}")

    # ----- construction ---------------------------------------------------
    @classmethod
    def none(cls, num_dpus: int) -> "FaultPlan":
        """A benign plan: no faults of any kind."""
        return cls(num_dpus=num_dpus, config=FaultConfig())

    @classmethod
    def generate(
        cls, num_dpus: int, config: FaultConfig, seed=None
    ) -> "FaultPlan":
        """Pre-draw every fault event from one seed.

        Fail-stop and straggler DPU sets are disjoint (a dead DPU's
        derate is irrelevant; keeping them separate makes reports
        readable).
        """
        rng = ensure_rng(seed)
        ids = rng.permutation(num_dpus)
        n_fail = int(round(config.fail_stop_fraction * num_dpus))
        n_strag = int(round(config.straggler_fraction * num_dpus))
        n_strag = min(n_strag, num_dpus - n_fail)
        fail_ids = ids[:n_fail]
        strag_ids = ids[n_fail : n_fail + n_strag]

        fail_at = {
            int(d): int(rng.integers(0, config.fail_stop_max_batch + 1))
            for d in fail_ids
        }
        derates = np.ones(num_dpus)
        lo, hi = config.straggler_derate
        for d in strag_ids:
            derates[int(d)] = float(rng.uniform(lo, hi))

        transients: Set[Tuple[int, int]] = set()
        if config.transient_rate > 0:
            hits = rng.random((config.horizon_batches, num_dpus)) < config.transient_rate
            for b, d in zip(*np.nonzero(hits)):
                transients.add((int(d), int(b)))

        timeouts: Set[int] = set()
        if config.transfer_timeout_rate > 0:
            hits = rng.random(config.horizon_batches) < config.transfer_timeout_rate
            timeouts = {int(b) for b in np.nonzero(hits)[0]}

        return cls(
            num_dpus=num_dpus,
            config=config,
            fail_at_batch=fail_at,
            derates=derates,
            transients=frozenset(transients),
            transfer_timeouts=frozenset(timeouts),
        )

    # ----- lookups (pure, O(1)) -------------------------------------------
    def fail_batch_of(self, dpu_id: int) -> Optional[int]:
        return self.fail_at_batch.get(dpu_id)

    def dead_at(self, batch: int) -> Set[int]:
        """DPUs that have fail-stopped by (the start of) ``batch``."""
        return {d for d, b in self.fail_at_batch.items() if b <= batch}

    def derate_of(self, dpu_id: int) -> float:
        return float(self.derates[dpu_id])

    def transient_at(self, dpu_id: int, batch: int) -> bool:
        return (dpu_id, batch) in self.transients

    def transfer_timeout_at(self, batch: int) -> bool:
        return batch in self.transfer_timeouts

    # ----- views ----------------------------------------------------------
    @property
    def failstop_dpus(self) -> List[int]:
        return sorted(self.fail_at_batch)

    @property
    def straggler_dpus(self) -> List[int]:
        return [int(d) for d in np.flatnonzero(self.derates < 1.0)]

    @property
    def has_capacity_faults(self) -> bool:
        """True when DPUs die or run slow (affects placement-sensitive paths)."""
        return bool(self.fail_at_batch) or bool(self.straggler_dpus)

    @property
    def is_benign(self) -> bool:
        return (
            not self.fail_at_batch
            and not self.straggler_dpus
            and not self.transients
            and not self.transfer_timeouts
        )

    # ----- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`.

        Keys of ``fail_at_batch`` become strings and tuples become
        lists (JSON has neither int keys nor tuples); ``from_dict``
        undoes both.
        """
        return {
            "num_dpus": self.num_dpus,
            "config": asdict(self.config),
            "fail_at_batch": {
                str(d): int(b) for d, b in sorted(self.fail_at_batch.items())
            },
            "derates": [float(x) for x in self.derates],
            "transients": sorted([d, b] for d, b in self.transients),
            "transfer_timeouts": sorted(self.transfer_timeouts),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        cfg = dict(d.get("config", {}))
        if "straggler_derate" in cfg:
            cfg["straggler_derate"] = tuple(cfg["straggler_derate"])
        return cls(
            num_dpus=int(d["num_dpus"]),
            config=FaultConfig(**cfg),
            fail_at_batch={
                int(k): int(v) for k, v in d.get("fail_at_batch", {}).items()
            },
            derates=np.asarray(
                d.get("derates", np.ones(int(d["num_dpus"]))), dtype=np.float64
            ),
            transients=frozenset(
                (int(a), int(b)) for a, b in d.get("transients", [])
            ),
            transfer_timeouts=frozenset(
                int(b) for b in d.get("transfer_timeouts", [])
            ),
        )

    def summary(self) -> str:
        return (
            f"fault plan over {self.num_dpus} DPUs: "
            f"{len(self.fail_at_batch)} fail-stop, "
            f"{len(self.straggler_dpus)} stragglers, "
            f"{len(self.transients)} transient kernel faults, "
            f"{len(self.transfer_timeouts)} transfer timeouts "
            f"(horizon {self.config.horizon_batches} batches)"
        )


# ---------------------------------------------------------------------------
# Node-level faults (rack / cluster granularity)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeFaultConfig:
    """Node-granularity fault knobs for the cluster layer.

    The DPU-level :class:`FaultConfig` models what breaks *inside* one
    PIM platform; this bundle models what breaks *between* platforms in
    a rack: a whole engine replica crashing, the network to a node
    dropping requests for a while, and a node that is simply slow
    (thermal throttling, a noisy neighbor, a background compaction).
    Rates follow the same conventions as :class:`FaultConfig`.
    """

    # Fraction of nodes that crash fail-stop; each draws a crash round
    # uniformly from [0, crash_max_round].
    crash_fraction: float = 0.0
    crash_max_round: int = 4
    # Per-(node, round) probability that requests to the node time out
    # (the node is alive but unreachable this round).
    partition_rate: float = 0.0
    # Fraction of nodes running slow, and the latency multiplier range.
    slow_fraction: float = 0.0
    slow_factor: Tuple[float, float] = (2.0, 6.0)
    # Rounds for which partition events are pre-drawn.
    horizon_rounds: int = 256

    def __post_init__(self) -> None:
        for name in ("crash_fraction", "partition_rate", "slow_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        lo, hi = self.slow_factor
        if not 1.0 <= lo <= hi:
            raise ValueError(
                f"slow_factor must satisfy 1 <= lo <= hi, got {self.slow_factor}"
            )
        if self.crash_max_round < 0:
            raise ValueError("crash_max_round must be >= 0")
        if self.horizon_rounds < 1:
            raise ValueError("horizon_rounds must be >= 1")


@dataclass(frozen=True)
class NodeFaultPlan:
    """A fully pre-drawn node-fault schedule for one cluster run.

    Mirrors :class:`FaultPlan` one level up: every event is drawn at
    construction from one seed, so injection is a pure table lookup at
    request time and two runs with the same seed see byte-identical
    fault sequences. "Round" is the cluster frontend's batch counter.
    """

    num_nodes: int
    config: NodeFaultConfig
    crash_at_round: Dict[int, int] = field(default_factory=dict)  # node -> round
    partitions: FrozenSet[Tuple[int, int]] = frozenset()  # (node, round)
    slow_factors: np.ndarray = field(default_factory=lambda: np.ones(0))

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be > 0")
        factors = np.asarray(self.slow_factors, dtype=np.float64)
        if factors.shape != (self.num_nodes,):
            factors = np.ones(self.num_nodes)
        if np.any(factors < 1):
            raise ValueError("slow_factors must be >= 1")
        object.__setattr__(self, "slow_factors", factors)
        for node, rnd in self.crash_at_round.items():
            if not 0 <= node < self.num_nodes:
                raise ValueError(
                    f"crash node {node} out of range [0, {self.num_nodes})"
                )
            if rnd < 0:
                raise ValueError(f"crash round must be >= 0, got {rnd}")

    # ----- construction ---------------------------------------------------
    @classmethod
    def none(cls, num_nodes: int) -> "NodeFaultPlan":
        """A benign plan: every node healthy, fast, reachable."""
        return cls(num_nodes=num_nodes, config=NodeFaultConfig())

    @classmethod
    def generate(
        cls, num_nodes: int, config: NodeFaultConfig, seed=None
    ) -> "NodeFaultPlan":
        """Pre-draw every node fault from one seed.

        Crashed and slow node sets are disjoint, as in
        :meth:`FaultPlan.generate`.
        """
        rng = ensure_rng(seed)
        ids = rng.permutation(num_nodes)
        n_crash = int(round(config.crash_fraction * num_nodes))
        n_slow = int(round(config.slow_fraction * num_nodes))
        n_slow = min(n_slow, num_nodes - n_crash)
        crash_ids = ids[:n_crash]
        slow_ids = ids[n_crash : n_crash + n_slow]

        crash_at = {
            int(n): int(rng.integers(0, config.crash_max_round + 1))
            for n in crash_ids
        }
        factors = np.ones(num_nodes)
        lo, hi = config.slow_factor
        for n in slow_ids:
            factors[int(n)] = float(rng.uniform(lo, hi))

        partitions: Set[Tuple[int, int]] = set()
        if config.partition_rate > 0:
            hits = (
                rng.random((config.horizon_rounds, num_nodes))
                < config.partition_rate
            )
            for r, n in zip(*np.nonzero(hits)):
                partitions.add((int(n), int(r)))

        return cls(
            num_nodes=num_nodes,
            config=config,
            crash_at_round=crash_at,
            partitions=frozenset(partitions),
            slow_factors=factors,
        )

    # ----- lookups (pure, O(1)) -------------------------------------------
    def crashed_at(self, node_id: int, round_index: int) -> bool:
        """Has ``node_id`` fail-stopped by (the start of) this round?"""
        rnd = self.crash_at_round.get(node_id)
        return rnd is not None and rnd <= round_index

    def partitioned_at(self, node_id: int, round_index: int) -> bool:
        return (node_id, round_index) in self.partitions

    def slow_factor_of(self, node_id: int) -> float:
        return float(self.slow_factors[node_id])

    # ----- views ----------------------------------------------------------
    @property
    def crashed_nodes(self) -> List[int]:
        return sorted(self.crash_at_round)

    @property
    def slow_nodes(self) -> List[int]:
        return [int(n) for n in np.flatnonzero(self.slow_factors > 1.0)]

    @property
    def is_benign(self) -> bool:
        return (
            not self.crash_at_round
            and not self.partitions
            and not self.slow_nodes
        )

    # ----- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`."""
        return {
            "num_nodes": self.num_nodes,
            "config": asdict(self.config),
            "crash_at_round": {
                str(n): int(r) for n, r in sorted(self.crash_at_round.items())
            },
            "partitions": sorted([n, r] for n, r in self.partitions),
            "slow_factors": [float(x) for x in self.slow_factors],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "NodeFaultPlan":
        cfg = dict(d.get("config", {}))
        if "slow_factor" in cfg:
            cfg["slow_factor"] = tuple(cfg["slow_factor"])
        return cls(
            num_nodes=int(d["num_nodes"]),
            config=NodeFaultConfig(**cfg),
            crash_at_round={
                int(k): int(v) for k, v in d.get("crash_at_round", {}).items()
            },
            partitions=frozenset(
                (int(n), int(r)) for n, r in d.get("partitions", [])
            ),
            slow_factors=np.asarray(
                d.get("slow_factors", np.ones(int(d["num_nodes"]))),
                dtype=np.float64,
            ),
        )

    def summary(self) -> str:
        return (
            f"node fault plan over {self.num_nodes} nodes: "
            f"{len(self.crash_at_round)} crashes, "
            f"{len(self.slow_nodes)} slow nodes, "
            f"{len(self.partitions)} partition events "
            f"(horizon {self.config.horizon_rounds} rounds)"
        )
