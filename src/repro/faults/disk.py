"""Storage-fault injection for the durable index lifecycle.

The persist layer's atomic-write protocol (stage to a temp file, fsync,
``os.replace``) exposes exactly two interesting crash windows, and
:func:`repro.core.persist.set_crash_hook` fires a callback at each:

* ``"staged"`` — the temp file is fully written and fsynced, but the
  rename has not happened. A crash here must leave the *previous*
  index file untouched and loadable (or no file at all, if this was
  the first save).
* ``"replaced"`` — the rename landed. A crash here must leave the
  *new* index file complete and loadable; there is no torn state.

:class:`CrashPoint` is the test-facing way to open one of those
windows: it installs a hook that raises :class:`SimulatedCrash` the
first time the chosen stage fires, and always restores the previous
hook on exit. Recovery tests wrap a save/compact in
``with CrashPoint("staged"): ...`` and then assert the old index still
verifies.
"""

from __future__ import annotations

from typing import Optional

from repro.core import persist

__all__ = ["CrashPoint", "SimulatedCrash"]


class SimulatedCrash(RuntimeError):
    """Raised by :class:`CrashPoint` to simulate dying mid-write."""


class CrashPoint:
    """Context manager that crashes the first atomic write at ``stage``.

    ``stage`` must be ``"staged"`` or ``"replaced"``. Only the first
    matching write crashes (``fired`` records whether one did), so a
    recovery path that retries the save inside the same block
    succeeds — mirroring a process restart after the crash.
    """

    def __init__(self, stage: str) -> None:
        if stage not in ("staged", "replaced"):
            raise ValueError(
                f"stage must be 'staged' or 'replaced', got {stage!r}"
            )
        self.stage = stage
        self.fired = False
        self._previous: Optional[object] = None

    def _hook(self, stage: str) -> None:
        if stage == self.stage and not self.fired:
            self.fired = True
            raise SimulatedCrash(
                f"simulated crash at atomic-write stage {stage!r}"
            )

    def __enter__(self) -> "CrashPoint":
        self._previous = persist._crash_hook
        persist.set_crash_hook(self._hook)
        return self

    def __exit__(self, *exc) -> None:
        persist.set_crash_hook(self._previous)  # type: ignore[arg-type]
        self._previous = None
