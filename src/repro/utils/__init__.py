"""Shared utilities: seeded RNG helpers, validation, timers, backoff."""

from repro.utils.backoff import BackoffPolicy, BackoffSequence
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_2d,
    check_dtype,
    check_positive,
    check_same_dim,
)
from repro.utils.timing import Stopwatch
from repro.utils.topk_merge import merge_topk_pools, topk_canonical

__all__ = [
    "merge_topk_pools",
    "topk_canonical",
    "BackoffPolicy",
    "BackoffSequence",
    "ensure_rng",
    "spawn_rngs",
    "check_2d",
    "check_dtype",
    "check_positive",
    "check_same_dim",
    "Stopwatch",
]
