"""Shared retry/backoff policy: seeded, jittered, capped.

The exponential-backoff schedule used by the engine's replica failover
(:meth:`repro.core.engine.DrimAnnEngine._recover`) is the same one the
cluster frontend needs for cross-node retries; this module is the
single definition both reuse.

Delays are **modeled** seconds charged to a run's wall-clock ledger,
never slept: the simulator stays deterministic and fast. Jitter — the
standard defense against retry synchronization across callers — is
therefore also deterministic: it is pre-drawn from an explicit seed at
:meth:`BackoffPolicy.sequence` time, so two runs with the same seed
charge byte-identical delays (the chaos determinism tests rely on
this). With ``jitter=0`` (the default) the schedule is exactly
``base_s * multiplier**attempt`` capped at ``cap_s`` — bit-compatible
with the pre-extraction engine behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base_s * multiplier**attempt``, capped.

    ``jitter`` is the fractional half-width of a uniform perturbation:
    a delay ``d`` becomes ``d * (1 + u)`` with ``u ~ U(-jitter, +jitter)``
    drawn from the seeded stream a :class:`BackoffSequence` owns.
    """

    base_s: float = 100e-6
    multiplier: float = 2.0
    cap_s: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.cap_s is not None and self.cap_s < 0:
            raise ValueError(f"cap_s must be >= 0 or None, got {self.cap_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered delay for 0-based ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        d = self.base_s * self.multiplier**attempt
        if self.cap_s is not None:
            d = min(d, self.cap_s)
        return d

    def sequence(self, seed=None) -> "BackoffSequence":
        """A stateful delay stream; deterministic for a given seed."""
        return BackoffSequence(self, seed=seed)

    def to_dict(self) -> dict:
        return {
            "base_s": self.base_s,
            "multiplier": self.multiplier,
            "cap_s": self.cap_s,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BackoffPolicy":
        return cls(**d)


class BackoffSequence:
    """One caller's delay stream.

    ``next_delay()`` advances the attempt counter; ``delay(attempt)``
    evaluates an arbitrary attempt without advancing (jitter for a
    given (seed, draw-index) is fixed either way). ``reset()`` restarts
    the attempt counter but keeps consuming the same jitter stream, so
    distinct retry bursts inside one run stay decorrelated.
    """

    def __init__(self, policy: BackoffPolicy, seed=None) -> None:
        self.policy = policy
        self._rng = ensure_rng(seed)
        self._attempt = 0
        self.total_s = 0.0

    @property
    def attempt(self) -> int:
        return self._attempt

    def _jittered(self, raw: float) -> float:
        j = self.policy.jitter
        if j == 0.0 or raw == 0.0:
            return raw
        u = float(self._rng.uniform(-j, j))
        return raw * (1.0 + u)

    def next_delay(self) -> float:
        """Delay for the current attempt; advances the counter."""
        d = self._jittered(self.policy.raw_delay(self._attempt))
        self._attempt += 1
        self.total_s += d
        return d

    def reset(self) -> None:
        self._attempt = 0
