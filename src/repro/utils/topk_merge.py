"""Canonical (distance, id) top-k merge, shared by every gather path.

The engine's per-task partials, the cluster frontend's per-shard
responses, and the host reference all end the same way: concatenate a
candidate pool per query and keep the k smallest under the canonical
``(distance, id)`` order. Ties on distance break by ascending id, which
makes the merged result independent of arrival order — the property
behind the bit-identity guarantees across execution modes, plans,
shardings, and (since adaptive probing) early-terminated probe sets.

This module is dependency-free (pure numpy) so both ``repro.ann`` and
``repro.cluster`` can import it without cycles. ``repro.ann.heap``
re-exports :func:`topk_canonical` for backward compatibility.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def topk_canonical(
    dists: np.ndarray, ids: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k of a candidate pool with a canonical (distance, id) order.

    Ties on distance are broken by ascending id, which makes the result
    independent of the order in which candidates were concatenated —
    the property that lets the engine's batched, chunked, and per-query
    execution modes (and the host reference) agree bit-for-bit even
    when partial results arrive in different orders.

    Returns ``(ids_k, dists_k)``, ascending by ``(distance, id)``.
    """
    dists = np.asarray(dists)
    ids = np.asarray(ids)
    kk = min(k, len(dists))
    order = np.lexsort((ids, dists))[:kk]
    return ids[order], dists[order]


def merge_topk_pools(
    pools_i: List[List[np.ndarray]],
    pools_d: List[List[np.ndarray]],
    num_queries: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-query candidate pools into dense ``(nq, k)`` results.

    ``pools_i[q]`` / ``pools_d[q]`` hold the id / distance fragments
    gathered for query ``q`` (from PIM partials or shard responses, in
    any order). Each query's pool is concatenated and reduced with
    :func:`topk_canonical`; queries with fewer than ``k`` candidates are
    padded with id ``-1`` and distance ``inf``.

    Returns ``(ids, dists)`` — int64 ``(nq, k)`` and float64 ``(nq, k)``.
    Distances are converted to float64 before the lexsort (exact for the
    integer ADC distances, which stay far below 2**53).
    """
    out_ids = np.full((num_queries, k), -1, dtype=np.int64)
    out_dist = np.full((num_queries, k), np.inf, dtype=np.float64)
    for qi in range(num_queries):
        if not pools_i[qi]:
            continue
        ids = np.concatenate(pools_i[qi])
        dists = np.concatenate(pools_d[qi]).astype(np.float64)
        kk = min(k, len(ids))
        sel_ids, sel_dists = topk_canonical(dists, ids, kk)
        out_ids[qi, :kk] = sel_ids
        out_dist[qi, :kk] = sel_dists
    return out_ids, out_dist
