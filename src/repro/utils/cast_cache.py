"""Cached dtype casts of long-lived arrays.

The hot LUT-build and locate paths re-cast the same trained tables
(codebooks, centroids) on every call; for small batches the cast
rivals the math itself. :class:`CastCache` memoizes one
``source.astype(dtype)`` result per cache instance — the cached array
is bit-identical to what a fresh cast would produce, so reuse is
invisible to results.

Keyed on the source array's identity and shape/dtype (the same scheme
as ``repro.core.square_lut.SquareTermCache``), so swapping in a rebuilt
table invalidates automatically; call :meth:`CastCache.invalidate`
explicitly after in-place mutation. Callers must treat the returned
array as read-only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class CastCache:
    """Cached dtype cast of one source array."""

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._key: Tuple = ()
        self._view = None

    def cast(self, source: np.ndarray) -> np.ndarray:
        key = (id(source), source.shape, source.dtype.str)
        if self._view is None or self._key != key:
            self._view = source.astype(self._dtype)
            self._key = key
        return self._view

    def invalidate(self) -> None:
        """Drop the cached cast (table rebuild / in-place mutation)."""
        self._key = ()
        self._view = None
