"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts ``seed`` (an int, an
existing :class:`numpy.random.Generator`, or ``None``) and normalizes it
through :func:`ensure_rng`, so that whole-system runs are exactly
reproducible from one integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged (shared state),
    which lets callers thread one RNG through a pipeline deliberately.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """Derive ``n`` statistically independent generators from one seed.

    Used when work is fanned out (e.g. one RNG per simulated DPU or per
    dataset shard) so that changing the fan-out width does not perturb
    streams of unrelated components.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
