"""Wall-clock stopwatch for host-side phases.

The PIM side of the system is timed in *modeled cycles* (see
``repro.pim``); the host side of an end-to-end run can be timed either
with this stopwatch (real seconds, for pytest-benchmark) or with the
analytic host model (for paper-figure reproduction). Keeping both lets
benchmarks report measured wall-clock alongside modeled time.
"""

from __future__ import annotations

import time
from typing import Dict


class Stopwatch:
    """Accumulating named-section stopwatch.

    >>> sw = Stopwatch()
    >>> with sw.section("locate"):
    ...     pass
    >>> sw.total() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._acc: Dict[str, float] = {}

    def section(self, name: str):
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._acc[name] = self._acc.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self._acc.get(name, 0.0)

    def total(self) -> float:
        return sum(self._acc.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._acc)

    def reset(self) -> None:
        self._acc.clear()


class _Section:
    def __init__(self, sw: Stopwatch, name: str) -> None:
        self._sw = sw
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._sw.add(self._name, time.perf_counter() - self._t0)
