"""Lightweight argument validation helpers.

Raise early with precise messages instead of letting NumPy broadcast
errors surface deep inside kernels.
"""

from __future__ import annotations

import numpy as np


def check_2d(arr: np.ndarray, name: str) -> np.ndarray:
    """Require a 2-D array; returns the array for chaining."""
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_dtype(arr: np.ndarray, dtypes, name: str) -> np.ndarray:
    """Require one of the given dtypes (names or dtype objects)."""
    arr = np.asarray(arr)
    allowed = tuple(np.dtype(d) for d in np.atleast_1d(dtypes))
    if arr.dtype not in allowed:
        names = ", ".join(str(d) for d in allowed)
        raise TypeError(f"{name} must have dtype in ({names}), got {arr.dtype}")
    return arr


def check_positive(value, name: str):
    """Require a strictly positive scalar."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_same_dim(a: np.ndarray, b: np.ndarray, name_a: str, name_b: str) -> None:
    """Require two 2-D arrays to share their trailing (feature) dimension."""
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"{name_a} and {name_b} must share the feature dimension: "
            f"{a.shape[-1]} != {b.shape[-1]}"
        )
