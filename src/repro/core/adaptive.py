"""Query-adaptive probing: exact distance bounds + nprobe budgets.

Fixed ``nprobe`` spends the same cycle budget on every query, but
per-query difficulty varies wildly: an easy query's true neighbours all
sit in its nearest cluster, a hard one's are scattered. This module
supplies the two host-side ingredients the engine's adaptive search
path composes (``SearchParams.adaptive``):

* **Distance-bound early termination** (``adaptive="bound"``). Every
  candidate the DC phase scores for cluster ``c`` is the exact integer
  ADC distance ``||r_q - recon_p||^2`` where ``r_q = q - centroid_c``
  and ``recon_p`` is the PQ reconstruction of the point's residual. By
  the triangle inequality,

      ||r_q - recon_p|| >= ||r_q|| - ||recon_p|| >= ||r_q|| - R_c

  with ``R_c = max_p ||recon_p||`` the cluster's *reconstruction
  radius* (computed at build time from the codes alone, persisted in
  the v2 index as the optional ``cluster_radii`` segment). Probing
  clusters nearest-centroid-first, the engine can stop a query as soon
  as its current k-th distance provably beats the lower bound of every
  remaining cluster. The bound is conservative (see
  :func:`lower_bounds` for the float-safety slack), so skipping is
  *exact*: ``adaptive="bound"`` returns results bit-identical to the
  exhaustive scan — only work is elided.

* **Gap-heuristic budgets** (``adaptive="budget"``). The sorted
  centroid-distance profile of an easy query shows a sharp jump — a
  gap — after the few clusters that matter. :func:`probe_budgets`
  cuts the probe list at the first gap exceeding ``adaptive_gap``
  times the mean gap, clamped to ``[nprobe_min, nprobe]``. This trades
  a bounded amount of recall for cycles; ``adaptive="full"`` combines
  it with the bound check.

The cycle ledger only ever charges clusters actually dispatched — the
honesty property the conformance suite (``tests/test_adaptive.py``)
pins by differential comparison against a fixed ``probes=`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.params import ADAPTIVE_MODES  # noqa: F401  (re-export)

#: Why a query stopped probing (labels of drimann_adaptive_stops_total).
STOP_REASONS = ("bound", "budget", "exhausted")


def codebook_norms_sq(codebooks: np.ndarray) -> np.ndarray:
    """Squared L2 norm of every codeword: ``(M, CB)`` int64.

    ``codebooks`` is the quantized ``(M, CB, dsub)`` int16 table; the
    squared norms are exact in int64.
    """
    cb = np.asarray(codebooks).astype(np.int64)
    return np.einsum("mcd,mcd->mc", cb, cb)


def reconstruction_norms_sq(
    norms_sq: np.ndarray, codes: np.ndarray
) -> np.ndarray:
    """``||recon_p||^2`` for each code row: ``(n,)`` int64.

    PQ subspaces are orthogonal coordinate blocks, so a reconstruction's
    squared norm is the sum of its codewords' squared norms — an exact
    table lookup, no decode needed.
    """
    codes = np.asarray(codes)
    m = norms_sq.shape[0]
    return norms_sq[np.arange(m), codes.astype(np.intp)].sum(axis=1)


def cluster_radii_sq(quantized) -> np.ndarray:
    """Per-cluster squared reconstruction radius: ``(nlist,)`` int64.

    ``R_c^2 = max_p ||recon_p||^2`` over the cluster's code rows (0 for
    empty clusters — their lower bound degenerates to the centroid
    distance itself, which is still valid). Tombstoned rows are *kept*:
    the radius must stay an upper bound for every resident row, and a
    stale-but-larger radius only costs work, never correctness.
    """
    norms = codebook_norms_sq(quantized.codebooks)
    out = np.zeros(quantized.nlist, dtype=np.int64)
    for cid in range(quantized.nlist):
        codes = quantized.cluster_codes[cid]
        if len(codes):
            out[cid] = int(reconstruction_norms_sq(norms, codes).max())
    return out


#: Absolute slack subtracted from every lower bound. The true quantity
#: ``(sqrt(rr) - sqrt(radius))^2`` is evaluated in float64; for int64
#: inputs below ~1e15 the compounded sqrt/multiply rounding error is
#: far below 1.0, and ADC distances are integers — so shifting the
#: bound down by a full unit makes ``d_k < bound`` decisions exact.
BOUND_SLACK = 1.0


def lower_bounds(
    centroid_dists_sq: np.ndarray, radii_sq: np.ndarray
) -> np.ndarray:
    """Conservative per-cluster lower bounds on any ADC distance.

    ``max(0, ||r_q|| - R_c)^2`` expanded as ``rr + R^2 - 2*sqrt(rr*R^2)``
    minus :data:`BOUND_SLACK`, as float64. Entries where the centroid
    distance is negative (can't happen for real inputs; guards padded
    slots) come back ``-inf`` so they never trigger a stop.
    """
    rr = np.asarray(centroid_dists_sq, dtype=np.float64)
    r2 = np.asarray(radii_sq, dtype=np.float64)
    lb = rr + r2 - 2.0 * np.sqrt(np.maximum(rr * r2, 0.0)) - BOUND_SLACK
    # Inside the radius the true bound is 0; the expansion already
    # yields <= 0 there, and negative bounds simply never fire.
    return np.where(rr >= 0.0, lb, -np.inf)


def probe_budgets(
    centroid_dists_sq: np.ndarray,
    nprobe_min: int,
    gap_factor: float,
) -> np.ndarray:
    """Gap-heuristic probe budgets, one per query: ``(nq,)`` int64.

    ``centroid_dists_sq`` is the ``(nq, P)`` ascending centroid-distance
    matrix from the CL phase. For each query the budget is the position
    of the first inter-cluster gap larger than ``gap_factor`` times the
    query's mean gap, never below ``nprobe_min`` and never above ``P``.
    Flat profiles (mean gap 0) keep the full budget.
    """
    d = np.asarray(centroid_dists_sq, dtype=np.float64)
    nq, p = d.shape
    lo = min(max(1, nprobe_min), p)
    if p == 1:
        return np.ones(nq, dtype=np.int64)
    gaps = np.diff(d, axis=1)  # (nq, P-1); gaps[:, i] = d[i+1] - d[i]
    mean_gap = (d[:, -1] - d[:, 0]) / (p - 1)
    big = gaps > gap_factor * mean_gap[:, None]
    big[:, : lo - 1] = False  # a cut at gap i yields budget i+1 >= lo
    first = np.argmax(big, axis=1)  # 0 when no gap qualifies
    budgets = np.where(big.any(axis=1), first + 1, p)
    return np.maximum(budgets, lo).astype(np.int64)


@dataclass
class AdaptiveReport:
    """What the adaptive search actually did, per query.

    Attached to :class:`~repro.core.results.SearchOutcome` when
    ``adaptive != "off"``. ``executed[q]`` lists the cluster ids whose
    scans were charged to the ledger for query ``q`` (issued minus
    fault-uncovered) — the ground truth the ledger-honesty test replays
    through the fixed ``probes=`` path.
    """

    mode: str
    nprobe_max: int
    budgets: np.ndarray  # (nq,) int64: per-query probe limit applied
    probes_executed: np.ndarray  # (nq,) int64: clusters actually charged
    stop_reasons: List[str] = field(default_factory=list)  # per query
    executed: List[List[int]] = field(default_factory=list)  # per query

    def to_dict(self) -> dict:
        reasons = {
            r: int(sum(1 for s in self.stop_reasons if s == r))
            for r in STOP_REASONS
        }
        return {
            "mode": self.mode,
            "nprobe_max": int(self.nprobe_max),
            "mean_budget": float(np.mean(self.budgets)),
            "mean_probes_executed": float(np.mean(self.probes_executed)),
            "total_probes_executed": int(np.sum(self.probes_executed)),
            "stop_reasons": reasons,
        }


def kth_pool_distance(pools_d: List[np.ndarray], k: int) -> float:
    """Current k-th smallest distance of a query's candidate pool.

    ``inf`` while the pool holds fewer than ``k`` candidates — an
    overestimate of the final k-th distance either way, so bound checks
    against it can only be conservative (a stop decided on a partial
    pool would also be decided on the full one).
    """
    if not pools_d:
        return float("inf")
    d = np.concatenate(pools_d)
    if len(d) < k:
        return float("inf")
    return float(np.partition(d.astype(np.float64), k - 1)[k - 1])
