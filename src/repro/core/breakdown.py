"""Timing breakdowns (paper Fig. 8).

Aggregates :class:`~repro.pim.system.BatchTiming` records over a run
into per-kernel shares and end-to-end component times. The paper's
breakdown is over DPU execution only (host and transfer are overlapped)
— :meth:`TimingBreakdown.kernel_shares` reproduces that view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.faults.report import FaultStats
from repro.pim.system import BatchTiming


@dataclass
class TimingBreakdown:
    """Accumulated timing over a run's batches."""

    pim_seconds: float = 0.0  # sum of per-batch max-DPU times
    host_seconds: float = 0.0  # modeled host-side phases (CL)
    transfer_seconds: float = 0.0
    e2e_seconds: float = 0.0  # with host/transfer overlap
    kernel_cycles: Dict[str, float] = field(default_factory=dict)
    per_batch_busy: List[float] = field(default_factory=list)
    per_batch_seconds: List[float] = field(default_factory=list)
    num_batches: int = 0
    num_queries: int = 0
    # Fault/recovery accounting for the run (set by the engine; None
    # means no fault layer was active).
    faults: Optional[FaultStats] = None

    def add_batch(
        self,
        timing: BatchTiming,
        host_seconds: float,
        num_queries: int,
    ) -> None:
        """Fold one batch in; e2e charges max(PIM, host, transfer)."""
        self.pim_seconds += timing.pim_seconds
        self.host_seconds += host_seconds
        self.transfer_seconds += timing.transfer_seconds
        self.e2e_seconds += max(
            timing.pim_seconds, host_seconds, timing.transfer_seconds
        )
        for k, v in timing.kernel_cycles.items():
            self.kernel_cycles[k] = self.kernel_cycles.get(k, 0.0) + v
        self.per_batch_busy.append(timing.busy_fraction)
        self.per_batch_seconds.append(timing.pim_seconds)
        self.num_batches += 1
        self.num_queries += num_queries

    def add_stall(self, seconds: float) -> None:
        """Charge host-side wall-clock with no PIM work (retry backoff)."""
        if seconds < 0:
            raise ValueError(f"stall seconds must be >= 0, got {seconds}")
        self.host_seconds += seconds
        self.e2e_seconds += seconds

    # ----- derived views ----------------------------------------------------
    def kernel_shares(self) -> Dict[str, float]:
        """Fraction of total DPU cycles per kernel (Fig. 8 bars)."""
        total = sum(self.kernel_cycles.values())
        if total <= 0:
            return {}
        return {k: v / total for k, v in sorted(self.kernel_cycles.items())}

    @property
    def mean_busy_fraction(self) -> float:
        """Average DPU utilization across batches (1.0 = balanced)."""
        if not self.per_batch_busy:
            return 1.0
        return float(np.mean(self.per_batch_busy))

    @property
    def throughput_qps(self) -> float:
        if self.e2e_seconds <= 0:
            return float("inf")
        return self.num_queries / self.e2e_seconds

    def batch_latency_percentile(self, q: float) -> float:
        """Percentile of per-batch PIM latency (tail-latency view).

        The paper's load balancer targets exactly this tail: a batch
        finishes with its slowest DPU, so imbalance shows up as a heavy
        per-batch latency tail. ``q`` in [0, 100].
        """
        if not self.per_batch_seconds:
            return 0.0
        return float(np.percentile(self.per_batch_seconds, q))

    @property
    def tail_ratio(self) -> float:
        """p95 / median of per-batch latency (1.0 = no tail)."""
        med = self.batch_latency_percentile(50)
        if med <= 0:
            return 1.0
        return self.batch_latency_percentile(95) / med

    def to_dict(self) -> dict:
        """JSON-safe form for CLI envelopes and metric dumps."""
        return {
            "pim_seconds": self.pim_seconds,
            "host_seconds": self.host_seconds,
            "transfer_seconds": self.transfer_seconds,
            "e2e_seconds": self.e2e_seconds,
            "kernel_cycles": dict(sorted(self.kernel_cycles.items())),
            "kernel_shares": self.kernel_shares(),
            "num_batches": self.num_batches,
            "num_queries": self.num_queries,
            "mean_busy_fraction": self.mean_busy_fraction,
            "tail_ratio": self.tail_ratio,
            "throughput_qps": (
                None if self.e2e_seconds <= 0 else self.throughput_qps
            ),
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    def summary(self) -> str:
        shares = ", ".join(
            f"{k}={v:.0%}" for k, v in self.kernel_shares().items()
        )
        text = (
            f"{self.num_queries} queries / {self.num_batches} batches: "
            f"e2e={self.e2e_seconds * 1e3:.2f} ms "
            f"(pim={self.pim_seconds * 1e3:.2f}, host={self.host_seconds * 1e3:.2f}, "
            f"xfer={self.transfer_seconds * 1e3:.2f}) "
            f"qps={self.throughput_qps:,.0f} busy={self.mean_busy_fraction:.0%} "
            f"[{shares}]"
        )
        if self.faults is not None and self.faults.summary() != "no faults observed":
            text += f"\nfaults: {self.faults.summary()}"
        return text
