"""Integer index data as resident on DPUs.

UPMEM DPUs have no floating-point unit, so everything the PIM side
touches must be integer: queries and centroids are uint8 (the paper's
datasets are uint8), PQ codebook entries are rounded to int16 (they are
residual-scale values), LUT entries are int32 partial squared
distances, and accumulated distances are int64-safe.

:func:`build_quantized_index` converts a float-trained
:class:`~repro.ann.ivfpq.IVFPQIndex` into :class:`QuantizedIndexData`.
The rounding slightly perturbs distances relative to the float
reference — exactly as on the real hardware — so accuracy experiments
measure the quantized pipeline end to end.

:meth:`QuantizedIndexData.reference_search` is the pure-NumPy gold
standard of the integer pipeline: the PIM engine must return identical
top-k sets for any layout/scheduling, which is the key invariance the
test suite checks (splitting, duplication and deferral must never
change results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ann.heap import topk_canonical, topk_smallest
from repro.ann.ivfpq import IVFPQIndex, SearchResult
from repro.core.square_lut import SquareTermCache
from repro.utils.cast_cache import CastCache
from repro.utils import check_2d

# Codebook entries are residual-scale; they are clipped to this bound at
# quantization time so that (residual - codebook) stays within the
# 3-level square-LUT range (±765 for 8-bit data).
CODEBOOK_CLIP = 510


@dataclass
class QuantizedIndexData:
    """Integer-only IVF-PQ index state."""

    centroids: np.ndarray  # (nlist, D) uint8
    codebooks: np.ndarray  # (M, CB, dsub) int16
    cluster_ids: List[np.ndarray]  # per cluster, (n_c,) int64 point ids
    cluster_codes: List[np.ndarray]  # per cluster, (n_c, M) uint8/uint16
    # Per cluster, (n_c,) bool — True marks a deleted (tombstoned) row.
    # None means "no deletions ever"; rows are only reclaimed by compact().
    tombstones: Optional[List[np.ndarray]] = field(default=None)

    def __post_init__(self) -> None:
        self.centroids = check_2d(self.centroids, "centroids")
        if self.centroids.dtype != np.uint8:
            raise TypeError(f"centroids must be uint8, got {self.centroids.dtype}")
        if self.codebooks.ndim != 3:
            raise ValueError(f"codebooks must be 3-D, got {self.codebooks.shape}")
        if self.codebooks.dtype != np.int16:
            raise TypeError(f"codebooks must be int16, got {self.codebooks.dtype}")
        if len(self.cluster_ids) != len(self.cluster_codes):
            raise ValueError("cluster_ids and cluster_codes length mismatch")
        if len(self.cluster_ids) != self.centroids.shape[0]:
            raise ValueError(
                f"{len(self.cluster_ids)} clusters != {self.centroids.shape[0]} centroids"
            )
        tombs = self.__dict__.get("tombstones")
        if tombs is not None:
            if len(tombs) != len(self.cluster_ids):
                raise ValueError(
                    f"{len(tombs)} tombstone masks != "
                    f"{len(self.cluster_ids)} clusters"
                )
            coerced = []
            for i, (mask, ids) in enumerate(zip(tombs, self.cluster_ids)):
                mask = np.asarray(mask)
                if mask.shape != (len(ids),):
                    raise ValueError(
                        f"tombstones[{i}] has shape {mask.shape}; "
                        f"cluster holds {len(ids)} rows"
                    )
                coerced.append(
                    mask if mask.dtype == np.bool_ else mask.astype(bool)
                )
            self.tombstones = coerced
        # Per-cluster ||centroid||² rows reused across locate() calls
        # (serving recomputed them every micro-batch otherwise).
        self._square_terms = SquareTermCache()
        # Cached int64 casts of the trained tables — the LC/CL hot
        # paths re-cast them on every batch otherwise.
        self._codebooks_i64 = CastCache(np.int64)
        self._centroids_i64 = CastCache(np.int64)

    def square_term_cache(self) -> SquareTermCache:
        """The per-cluster ||centroid||² cache, created on demand.

        Instances restored by pickle (benchmark disk cache, persisted
        snapshots) bypass ``__post_init__``, so the attribute may be
        absent — access always goes through this lazy accessor.
        """
        cache = self.__dict__.get("_square_terms")
        if cache is None:
            cache = self._square_terms = SquareTermCache()
        return cache

    def codebooks_int64(self) -> np.ndarray:
        """Cached int64 cast of the codebooks (read-only; lazy like
        :meth:`square_term_cache` so unpickled instances work)."""
        cache = self.__dict__.get("_codebooks_i64")
        if cache is None:
            cache = self._codebooks_i64 = CastCache(np.int64)
        return cache.cast(self.codebooks)

    def centroids_int64(self) -> np.ndarray:
        """Cached int64 cast of the centroids (read-only; lazy like
        :meth:`square_term_cache` so unpickled instances work)."""
        cache = self.__dict__.get("_centroids_i64")
        if cache is None:
            cache = self._centroids_i64 = CastCache(np.int64)
        return cache.cast(self.centroids)

    def invalidate_caches(self) -> None:
        """Drop derived caches after mutating index data in place.

        Replacing the arrays (the normal rebuild path through
        :func:`build_quantized_index`) invalidates automatically; this
        hook covers in-place edits to ``centroids`` or ``codebooks``.
        """
        self.square_term_cache().invalidate()
        for name in ("_codebooks_i64", "_centroids_i64"):
            cache = self.__dict__.get(name)
            if cache is not None:
                cache.invalidate()

    # ----- shape ----------------------------------------------------------
    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    @property
    def num_subspaces(self) -> int:
        return self.codebooks.shape[0]

    @property
    def codebook_size(self) -> int:
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        return self.codebooks.shape[2]

    @property
    def num_points(self) -> int:
        return int(sum(len(i) for i in self.cluster_ids))

    def cluster_sizes(self) -> np.ndarray:
        return np.array([len(i) for i in self.cluster_ids], dtype=np.int64)

    def codes_nbytes(self, cluster_id: int) -> int:
        return self.cluster_codes[cluster_id].nbytes

    # ----- tombstones -----------------------------------------------------
    def tombstone_masks(self) -> Optional[List[np.ndarray]]:
        """Per-cluster deletion masks, or ``None`` when nothing was deleted.

        Lazy accessor (like :meth:`square_term_cache`): instances
        restored by pickle bypass ``__post_init__`` and may predate the
        field entirely.
        """
        return self.__dict__.get("tombstones")

    def _ensure_tombstones(self) -> List[np.ndarray]:
        masks = self.tombstone_masks()
        if masks is None:
            masks = [
                np.zeros(len(ids), dtype=bool) for ids in self.cluster_ids
            ]
            self.tombstones = masks
        return masks

    @property
    def num_tombstones(self) -> int:
        masks = self.tombstone_masks()
        if masks is None:
            return 0
        return int(sum(int(m.sum()) for m in masks))

    @property
    def has_tombstones(self) -> bool:
        return self.num_tombstones > 0

    @property
    def num_live_points(self) -> int:
        return self.num_points - self.num_tombstones

    @property
    def tombstone_ratio(self) -> float:
        total = self.num_points
        return self.num_tombstones / total if total else 0.0

    def cluster_live_sizes(self) -> np.ndarray:
        """Like :meth:`cluster_sizes`, minus tombstoned rows."""
        sizes = self.cluster_sizes()
        masks = self.tombstone_masks()
        if masks is not None:
            sizes = sizes - np.array(
                [int(m.sum()) for m in masks], dtype=np.int64
            )
        return sizes

    def live_rows(self, cluster_id: int) -> Optional[np.ndarray]:
        """Row indices of live points in a cluster, ``None`` if all live."""
        masks = self.tombstone_masks()
        if masks is None or not masks[cluster_id].any():
            return None
        return np.flatnonzero(~masks[cluster_id])

    # ----- mutable lifecycle ----------------------------------------------
    def encode(self, vectors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Assign and PQ-encode raw uint8 vectors with the trained index.

        Pure integer pipeline: assignment is :meth:`locate` with
        nprobe=1 (int64 distances, canonical lowest-index tie-break),
        and codes are the per-subspace argmin over the int16 codebooks
        in int64. Returns ``(assign, codes)`` — ``(n,)`` cluster ids and
        ``(n, M)`` codes in the index's code dtype.
        """
        vectors = check_2d(vectors, "vectors")
        if vectors.dtype != np.uint8:
            raise TypeError(f"vectors must be uint8, got {vectors.dtype}")
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors have dim {vectors.shape[1]}; index has {self.dim}"
            )
        n = vectors.shape[0]
        m, cb, dsub = self.codebooks.shape
        code_dtype = np.uint8 if cb <= 256 else np.uint16
        if n == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, m), dtype=code_dtype),
            )
        assign = self.locate(vectors, 1)[:, 0]
        codes = np.empty((n, m), dtype=code_dtype)
        books = self.codebooks_int64()[None]
        # Chunk the (chunk, M, CB, dsub) int64 workspace to ~128 MiB.
        chunk = max(1, (1 << 27) // max(1, m * cb * dsub * 8))
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            res = vectors[lo:hi].astype(np.int32) - self.centroids[
                assign[lo:hi]
            ].astype(np.int32)
            r = res.astype(np.int64).reshape(hi - lo, m, 1, dsub)
            diff = r - books
            dist = np.einsum("nmcd,nmcd->nmc", diff, diff)
            codes[lo:hi] = dist.argmin(axis=2).astype(code_dtype)
        return assign, codes

    def add(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode and append new vectors; returns ``(new_ids, assign)``.

        Ids default to a fresh contiguous range above the current
        maximum (tombstoned ids still count as taken until
        :meth:`compact`). Appending re-materializes the touched
        clusters' arrays, so mmap-backed clusters become ordinary
        in-memory arrays for exactly the clusters that grew.
        """
        assign, codes = self.encode(vectors)
        n = len(assign)
        if ids is None:
            existing_max = -1
            for arr in self.cluster_ids:
                if len(arr):
                    existing_max = max(existing_max, int(arr.max()))
            ids = np.arange(existing_max + 1, existing_max + 1 + n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64).ravel()
            if len(ids) != n:
                raise ValueError(f"{len(ids)} ids for {n} vectors")
            if len(np.unique(ids)) != n:
                raise ValueError("duplicate ids in add() batch")
            for arr in self.cluster_ids:
                if len(arr) and bool(np.isin(ids, arr).any()):
                    raise ValueError("add() ids collide with existing point ids")
        if n == 0:
            return ids, assign
        masks = self.tombstone_masks()
        for cid in np.unique(assign):
            rows = assign == cid
            cid = int(cid)
            self.cluster_ids[cid] = np.concatenate(
                [np.asarray(self.cluster_ids[cid]), ids[rows]]
            )
            self.cluster_codes[cid] = np.concatenate(
                [
                    np.asarray(self.cluster_codes[cid]),
                    codes[rows].astype(self.cluster_codes[cid].dtype),
                ]
            )
            if masks is not None:
                masks[cid] = np.concatenate(
                    [masks[cid], np.zeros(int(rows.sum()), dtype=bool)]
                )
        return ids, assign

    def delete(self, ids: np.ndarray) -> int:
        """Tombstone points by id; returns how many rows were newly marked.

        Rows stay resident (the DC phase still streams them — the cycle
        ledger charges that honestly) but are filtered out of every
        result path until :meth:`compact` reclaims them.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if len(ids) == 0:
            return 0
        masks = self._ensure_tombstones()
        count = 0
        for cid in range(self.nlist):
            cluster = self.cluster_ids[cid]
            if len(cluster) == 0:
                continue
            hit = np.isin(np.asarray(cluster), ids) & ~masks[cid]
            if hit.any():
                masks[cid] |= hit
                count += int(hit.sum())
        return count

    def compact(self) -> "QuantizedIndexData":
        """A fresh, fully-materialized index holding only live rows.

        The result owns plain in-memory arrays (never mmap views) and
        carries no tombstones — it is what gets re-encoded to disk when
        the engine compacts.
        """
        masks = self.tombstone_masks()
        new_ids: List[np.ndarray] = []
        new_codes: List[np.ndarray] = []
        for cid in range(self.nlist):
            ids = np.asarray(self.cluster_ids[cid])
            codes = np.asarray(self.cluster_codes[cid])
            if masks is not None and masks[cid].any():
                keep = ~masks[cid]
                ids = ids[keep]
                codes = codes[keep]
            new_ids.append(np.array(ids, dtype=np.int64))
            new_codes.append(np.array(codes))
        return QuantizedIndexData(
            centroids=np.array(self.centroids),
            codebooks=np.array(self.codebooks),
            cluster_ids=new_ids,
            cluster_codes=new_codes,
        )

    @classmethod
    def from_vectors(
        cls,
        centroids: np.ndarray,
        codebooks: np.ndarray,
        vectors: np.ndarray,
        ids: Optional[np.ndarray] = None,
    ) -> "QuantizedIndexData":
        """Build an index by integer-encoding ``vectors`` against trained
        centroids/codebooks — the gold standard ``compact()`` must match."""
        m = codebooks.shape[0]
        cb = codebooks.shape[1]
        code_dtype = np.uint8 if cb <= 256 else np.uint16
        nlist = centroids.shape[0]
        inst = cls(
            centroids=centroids,
            codebooks=codebooks,
            cluster_ids=[np.empty(0, dtype=np.int64) for _ in range(nlist)],
            cluster_codes=[
                np.empty((0, m), dtype=code_dtype) for _ in range(nlist)
            ],
        )
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[0]:
            inst.add(vectors, ids)
        return inst

    # ----- integer search pipeline ----------------------------------------
    def locate(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """CL phase on integer centroids. ``(q, nprobe)`` ids, nearest first."""
        ids, _ = self.locate_with_distances(queries, nprobe)
        return ids

    def locate_with_distances(
        self, queries: np.ndarray, nprobe: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CL phase keeping the integer centroid distances.

        Returns ``(ids, dists)``: the ``(q, nprobe)`` nearest-first
        cluster ids plus the matching int64 squared centroid distances
        — the statistics the adaptive probing path (budgets and
        distance bounds, see :mod:`repro.core.adaptive`) is driven by.
        """
        queries = check_2d(queries, "queries")
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")
        q = queries.astype(np.int64)
        c = self.centroids_int64()
        qq = np.einsum("ij,ij->i", q, q)[:, None]
        cc = self.square_term_cache().terms(self.centroids)
        d = qq + cc - 2 * (q @ c.T)
        idx, dists = topk_smallest(d, nprobe, axis=1)
        return idx.astype(np.int64), dists

    def residual(self, query: np.ndarray, cluster_id: int) -> np.ndarray:
        """RC phase: int32 residual of one query to one centroid."""
        return query.astype(np.int32) - self.centroids[cluster_id].astype(np.int32)

    def build_lut(self, residual: np.ndarray) -> np.ndarray:
        """LC phase: integer ADC LUT, ``(M, CB)`` int64."""
        m, dsub = self.num_subspaces, self.dsub
        r = residual.astype(np.int64).reshape(m, 1, dsub)
        diff = r - self.codebooks_int64()
        return np.einsum("mcd,mcd->mc", diff, diff)

    def build_luts(self, residuals: np.ndarray) -> np.ndarray:
        """Batched LC: ``(g, D)`` int32 residuals → ``(g, M, CB)`` int64."""
        residuals = check_2d(residuals, "residuals")
        g = residuals.shape[0]
        m, dsub = self.num_subspaces, self.dsub
        r = residuals.astype(np.int64).reshape(g, m, 1, dsub)
        diff = r - self.codebooks_int64()[None]
        return np.einsum("gmcd,gmcd->gmc", diff, diff)

    def reference_search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> SearchResult:
        """Host-side gold standard of the integer pipeline.

        Identical math to the PIM kernels, with no partitioning — the
        engine's results must match this for every layout and schedule.
        """
        queries = check_2d(queries, "queries")
        probes = self.locate(queries, nprobe)
        nq = queries.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        marange = np.arange(self.num_subspaces)
        masks = self.tombstone_masks()
        for qi in range(nq):
            dparts = []
            iparts = []
            for cid in probes[qi]:
                ids = self.cluster_ids[cid]
                codes = self.cluster_codes[cid]
                # Tombstoned rows are filtered BEFORE the scan/top-k so
                # deleted points can never displace live candidates —
                # the engine's scan path filters at the same stage.
                if masks is not None and masks[cid].any():
                    keep = ~masks[cid]
                    ids = ids[keep]
                    codes = codes[keep]
                if len(ids) == 0:
                    continue
                lut = self.build_lut(self.residual(queries[qi], cid))
                d = lut[marange[None, :], codes.astype(np.intp)].sum(axis=1)
                dparts.append(d)
                iparts.append(ids)
            if not dparts:
                continue
            dall = np.concatenate(dparts)
            iall = np.concatenate(iparts)
            kk = min(k, len(dall))
            sel_ids, sel_dists = topk_canonical(dall, iall, kk)
            out_ids[qi, :kk] = sel_ids
            out_dist[qi, :kk] = sel_dists.astype(np.float64)
        return SearchResult(ids=out_ids, distances=out_dist)


def build_quantized_index(index: IVFPQIndex) -> QuantizedIndexData:
    """Round a float-trained IVFPQIndex into DPU-resident integer form.

    Requires the index to have been built on uint8-range data (the
    paper's setting); centroids are rounded into [0, 255] and codebook
    entries clipped to ±``CODEBOOK_CLIP``.
    """
    if index.rotation is not None:
        raise ValueError(
            "OPQ-rotated indexes must be quantized on rotated data; "
            "apply the rotation to the corpus first (the engine does "
            "this automatically) — got an index with a rotation attached"
        )
    cents = np.clip(np.rint(index.ivf.centroids), 0, 255).astype(np.uint8)
    books = np.clip(
        np.rint(index.pq.codebooks), -CODEBOOK_CLIP, CODEBOOK_CLIP
    ).astype(np.int16)
    return QuantizedIndexData(
        centroids=cents,
        codebooks=books,
        cluster_ids=[ids.copy() for ids in index.ivf.lists],
        cluster_codes=[c.copy() for c in index.codes],
    )
