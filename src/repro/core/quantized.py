"""Integer index data as resident on DPUs.

UPMEM DPUs have no floating-point unit, so everything the PIM side
touches must be integer: queries and centroids are uint8 (the paper's
datasets are uint8), PQ codebook entries are rounded to int16 (they are
residual-scale values), LUT entries are int32 partial squared
distances, and accumulated distances are int64-safe.

:func:`build_quantized_index` converts a float-trained
:class:`~repro.ann.ivfpq.IVFPQIndex` into :class:`QuantizedIndexData`.
The rounding slightly perturbs distances relative to the float
reference — exactly as on the real hardware — so accuracy experiments
measure the quantized pipeline end to end.

:meth:`QuantizedIndexData.reference_search` is the pure-NumPy gold
standard of the integer pipeline: the PIM engine must return identical
top-k sets for any layout/scheduling, which is the key invariance the
test suite checks (splitting, duplication and deferral must never
change results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ann.heap import topk_canonical, topk_smallest
from repro.ann.ivfpq import IVFPQIndex, SearchResult
from repro.core.square_lut import SquareTermCache
from repro.utils import check_2d

# Codebook entries are residual-scale; they are clipped to this bound at
# quantization time so that (residual - codebook) stays within the
# 3-level square-LUT range (±765 for 8-bit data).
CODEBOOK_CLIP = 510


@dataclass
class QuantizedIndexData:
    """Integer-only IVF-PQ index state."""

    centroids: np.ndarray  # (nlist, D) uint8
    codebooks: np.ndarray  # (M, CB, dsub) int16
    cluster_ids: List[np.ndarray]  # per cluster, (n_c,) int64 point ids
    cluster_codes: List[np.ndarray]  # per cluster, (n_c, M) uint8/uint16

    def __post_init__(self) -> None:
        self.centroids = check_2d(self.centroids, "centroids")
        if self.centroids.dtype != np.uint8:
            raise TypeError(f"centroids must be uint8, got {self.centroids.dtype}")
        if self.codebooks.ndim != 3:
            raise ValueError(f"codebooks must be 3-D, got {self.codebooks.shape}")
        if self.codebooks.dtype != np.int16:
            raise TypeError(f"codebooks must be int16, got {self.codebooks.dtype}")
        if len(self.cluster_ids) != len(self.cluster_codes):
            raise ValueError("cluster_ids and cluster_codes length mismatch")
        if len(self.cluster_ids) != self.centroids.shape[0]:
            raise ValueError(
                f"{len(self.cluster_ids)} clusters != {self.centroids.shape[0]} centroids"
            )
        # Per-cluster ||centroid||² rows reused across locate() calls
        # (serving recomputed them every micro-batch otherwise).
        self._square_terms = SquareTermCache()

    def square_term_cache(self) -> SquareTermCache:
        """The per-cluster ||centroid||² cache, created on demand.

        Instances restored by pickle (benchmark disk cache, persisted
        snapshots) bypass ``__post_init__``, so the attribute may be
        absent — access always goes through this lazy accessor.
        """
        cache = self.__dict__.get("_square_terms")
        if cache is None:
            cache = self._square_terms = SquareTermCache()
        return cache

    def invalidate_caches(self) -> None:
        """Drop derived caches after mutating index data in place.

        Replacing the arrays (the normal rebuild path through
        :func:`build_quantized_index`) invalidates automatically; this
        hook covers in-place edits to ``centroids``.
        """
        self.square_term_cache().invalidate()

    # ----- shape ----------------------------------------------------------
    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    @property
    def num_subspaces(self) -> int:
        return self.codebooks.shape[0]

    @property
    def codebook_size(self) -> int:
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        return self.codebooks.shape[2]

    @property
    def num_points(self) -> int:
        return int(sum(len(i) for i in self.cluster_ids))

    def cluster_sizes(self) -> np.ndarray:
        return np.array([len(i) for i in self.cluster_ids], dtype=np.int64)

    def codes_nbytes(self, cluster_id: int) -> int:
        return self.cluster_codes[cluster_id].nbytes

    # ----- integer search pipeline ----------------------------------------
    def locate(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """CL phase on integer centroids. ``(q, nprobe)`` ids, nearest first."""
        queries = check_2d(queries, "queries")
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")
        q = queries.astype(np.int64)
        c = self.centroids.astype(np.int64)
        qq = np.einsum("ij,ij->i", q, q)[:, None]
        cc = self.square_term_cache().terms(self.centroids)
        d = qq + cc - 2 * (q @ c.T)
        idx, _ = topk_smallest(d, nprobe, axis=1)
        return idx.astype(np.int64)

    def residual(self, query: np.ndarray, cluster_id: int) -> np.ndarray:
        """RC phase: int32 residual of one query to one centroid."""
        return query.astype(np.int32) - self.centroids[cluster_id].astype(np.int32)

    def build_lut(self, residual: np.ndarray) -> np.ndarray:
        """LC phase: integer ADC LUT, ``(M, CB)`` int64."""
        m, dsub = self.num_subspaces, self.dsub
        r = residual.astype(np.int64).reshape(m, 1, dsub)
        diff = r - self.codebooks.astype(np.int64)
        return np.einsum("mcd,mcd->mc", diff, diff)

    def build_luts(self, residuals: np.ndarray) -> np.ndarray:
        """Batched LC: ``(g, D)`` int32 residuals → ``(g, M, CB)`` int64."""
        residuals = check_2d(residuals, "residuals")
        g = residuals.shape[0]
        m, dsub = self.num_subspaces, self.dsub
        r = residuals.astype(np.int64).reshape(g, m, 1, dsub)
        diff = r - self.codebooks.astype(np.int64)[None]
        return np.einsum("gmcd,gmcd->gmc", diff, diff)

    def reference_search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> SearchResult:
        """Host-side gold standard of the integer pipeline.

        Identical math to the PIM kernels, with no partitioning — the
        engine's results must match this for every layout and schedule.
        """
        queries = check_2d(queries, "queries")
        probes = self.locate(queries, nprobe)
        nq = queries.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        marange = np.arange(self.num_subspaces)
        for qi in range(nq):
            dparts = []
            iparts = []
            for cid in probes[qi]:
                ids = self.cluster_ids[cid]
                if len(ids) == 0:
                    continue
                lut = self.build_lut(self.residual(queries[qi], cid))
                codes = self.cluster_codes[cid]
                d = lut[marange[None, :], codes.astype(np.intp)].sum(axis=1)
                dparts.append(d)
                iparts.append(ids)
            if not dparts:
                continue
            dall = np.concatenate(dparts)
            iall = np.concatenate(iparts)
            kk = min(k, len(dall))
            sel_ids, sel_dists = topk_canonical(dall, iall, kk)
            out_ids[qi, :kk] = sel_ids
            out_dist[qi, :kk] = sel_dists.astype(np.float64)
        return SearchResult(ids=out_ids, distances=out_dist)


def build_quantized_index(index: IVFPQIndex) -> QuantizedIndexData:
    """Round a float-trained IVFPQIndex into DPU-resident integer form.

    Requires the index to have been built on uint8-range data (the
    paper's setting); centroids are rounded into [0, 255] and codebook
    entries clipped to ±``CODEBOOK_CLIP``.
    """
    if index.rotation is not None:
        raise ValueError(
            "OPQ-rotated indexes must be quantized on rotated data; "
            "apply the rotation to the corpus first (the engine does "
            "this automatically) — got an index with a rotation attached"
        )
    cents = np.clip(np.rint(index.ivf.centroids), 0, 255).astype(np.uint8)
    books = np.clip(
        np.rint(index.pq.codebooks), -CODEBOOK_CLIP, CODEBOOK_CLIP
    ).astype(np.int16)
    return QuantizedIndexData(
        centroids=cents,
        codebooks=books,
        cluster_ids=[ids.copy() for ids in index.ivf.lists],
        cluster_codes=[c.copy() for c in index.codes],
    )
