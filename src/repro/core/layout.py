"""Offline data-layout generation (§IV-C).

Three mechanisms, one per load-imbalance observation:

* **Data partition** (Observation 1: unbalanced cluster sizes) — the
  splitter divides clusters larger than ``min_split_size`` into
  near-equal parts placed on different DPUs, shrinking the per-task DC
  and TS time of giant clusters. Each part needs its own LUT build, so
  splitting trades LC overhead for balance — the U-shaped curve of
  Fig. 12(a).
* **Data duplication** (Observation 2: multiple queries hitting one
  cluster per batch) — the duplicator replicates the hottest clusters
  (heat estimated from a sample query set) up to a per-DPU memory
  budget; replicas let the runtime scheduler spread concurrent
  accesses, the saturating gain of Fig. 12(b).
* **Data allocation** (Observation 3: skewed access frequency) — a
  greedy least-heat-first assignment of shards to DPUs, so hot shards
  never pile onto one DPU (Fig. 11(b)); MRAM capacity is respected and
  sibling shards (parts of one replica, or copies of one cluster)
  repel each other across DPUs.

The output :class:`LayoutPlan` maps every original cluster to its
replica groups; each replica group is a list of shard keys (parts).
A (query, cluster) task executes as one (query, part) task per part of
one chosen replica group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.quantized import QuantizedIndexData
from repro.utils import ensure_rng


@dataclass
class ClusterShard:
    """A placeable unit: one part of one replica of one cluster."""

    shard_key: str
    cluster_id: int
    replica_id: int
    part_id: int
    point_rows: np.ndarray  # row indices into the cluster's arrays
    heat: float  # estimated load contribution

    @property
    def num_points(self) -> int:
        return len(self.point_rows)


@dataclass(frozen=True)
class LayoutConfig:
    """Layout-generation knobs."""

    # Clusters above this size are split into ceil(size/min_split_size)
    # parts. None disables splitting (Fig. 11 baseline arm).
    min_split_size: Optional[int] = None
    # Max extra copies per cluster (0 disables duplication).
    max_copies: int = 2
    # Per-DPU MRAM budget devoted to duplicated shards, bytes.
    dup_budget_per_dpu: int = 6 * 1024 * 1024
    # Allocation policy: "heat_greedy" (the paper's) or "id_order"
    # (the Fig. 11 baseline that assigns clusters to DPUs in ID order).
    allocation: str = "heat_greedy"

    def __post_init__(self) -> None:
        if self.min_split_size is not None and self.min_split_size < 1:
            raise ValueError("min_split_size must be >= 1 or None")
        if self.max_copies < 0:
            raise ValueError("max_copies must be >= 0")
        if self.allocation not in ("heat_greedy", "id_order"):
            raise ValueError(
                f"allocation must be 'heat_greedy' or 'id_order', got {self.allocation!r}"
            )


@dataclass
class LayoutPlan:
    """The generated layout."""

    shards: Dict[str, ClusterShard]
    placement: Dict[str, int]  # shard_key -> dpu_id
    replica_groups: Dict[int, List[List[str]]]  # cluster -> [replica -> [parts]]
    num_dpus: int

    def shards_on(self, dpu_id: int) -> List[str]:
        return [k for k, d in self.placement.items() if d == dpu_id]

    def replica_count(self, cluster_id: int) -> int:
        return len(self.replica_groups[cluster_id])

    def heat_per_dpu(self) -> np.ndarray:
        heat = np.zeros(self.num_dpus)
        for key, dpu in self.placement.items():
            heat[dpu] += self.shards[key].heat
        return heat


def estimate_cluster_heat(
    index: QuantizedIndexData,
    sample_queries: np.ndarray,
    nprobe: int,
    *,
    lut_weight: float,
    point_weight: float,
    smoothing: float = 0.5,
) -> np.ndarray:
    """Heat = access frequency x per-access latency estimate (Eq. 15).

    ``lut_weight`` is the fixed LC cost per (query, cluster) access and
    ``point_weight`` the per-point DC+TS cost; both in arbitrary
    consistent units (the scheduler uses cycles).

    ``smoothing`` is an additive pseudo-count on the sampled access
    frequency. Without it, clusters the sample never probed carry zero
    heat and the greedy allocator piles them all onto whichever DPU is
    currently coolest — a single DPU ends up hosting every "cold"
    cluster, which is catastrophic when the live workload drifts away
    from the sample (hot sets move in real retrieval streams). The
    pseudo-count keeps unsampled clusters' heat proportional to their
    size, so they spread like everything else.
    """
    if smoothing < 0:
        raise ValueError(f"smoothing must be >= 0, got {smoothing}")
    probes = index.locate(sample_queries, nprobe)
    freq = np.bincount(probes.ravel(), minlength=index.nlist).astype(np.float64)
    freq += smoothing
    # Live sizes: tombstoned rows no longer reach TS, so they stop
    # counting toward heat (identical to cluster_sizes() when nothing
    # was deleted — golden ledgers are unaffected).
    sizes = index.cluster_live_sizes().astype(np.float64)
    return freq * (lut_weight + point_weight * sizes)


def generate_layout(
    index: QuantizedIndexData,
    num_dpus: int,
    cluster_heat: np.ndarray,
    config: LayoutConfig = LayoutConfig(),
    *,
    seed=None,
) -> LayoutPlan:
    """Split, duplicate, and allocate clusters onto DPUs."""
    if num_dpus <= 0:
        raise ValueError("num_dpus must be > 0")
    cluster_heat = np.asarray(cluster_heat, dtype=np.float64)
    if cluster_heat.shape != (index.nlist,):
        raise ValueError(
            f"cluster_heat must have shape ({index.nlist},), got {cluster_heat.shape}"
        )
    rng = ensure_rng(seed)
    sizes = index.cluster_sizes()

    # ----- duplication decision (whole clusters) -------------------------
    copies = np.zeros(index.nlist, dtype=np.int64)
    if config.max_copies > 0:
        bytes_per_point = (
            index.cluster_codes[0].dtype.itemsize * index.num_subspaces + 8
        )
        budget_total = config.dup_budget_per_dpu * num_dpus
        order = np.argsort(-cluster_heat, kind="stable")
        spent = 0
        for cid in order:
            if cluster_heat[cid] <= 0:
                break
            for _ in range(config.max_copies):
                cost = int(sizes[cid]) * bytes_per_point + index.dim
                if spent + cost > budget_total:
                    break
                if copies[cid] >= config.max_copies:
                    break
                copies[cid] += 1
                spent += cost

    # ----- splitting + shard construction --------------------------------
    shards: Dict[str, ClusterShard] = {}
    replica_groups: Dict[int, List[List[str]]] = {}
    for cid in range(index.nlist):
        n = int(sizes[cid])
        if config.min_split_size is not None and n > config.min_split_size:
            num_parts = -(-n // config.min_split_size)  # ceil
        else:
            num_parts = 1
        part_rows = np.array_split(np.arange(n), num_parts)
        total_reps = 1 + int(copies[cid])
        groups: List[List[str]] = []
        for rep in range(total_reps):
            group: List[str] = []
            for part, rows in enumerate(part_rows):
                key = f"c{cid}_r{rep}_p{part}"
                # Heat divides across parts (each part does 1/parts of
                # the DC work) and across replicas (traffic splits).
                shard_heat = cluster_heat[cid] / (num_parts * total_reps)
                shards[key] = ClusterShard(
                    shard_key=key,
                    cluster_id=cid,
                    replica_id=rep,
                    part_id=part,
                    point_rows=rows,
                    heat=shard_heat,
                )
                group.append(key)
            groups.append(group)
        replica_groups[cid] = groups

    # ----- allocation ------------------------------------------------------
    placement: Dict[str, int] = {}
    if config.allocation == "id_order":
        # Baseline (paper Fig. 11): "clusters are allocated to DPUs in
        # ID order" — contiguous blocks of cluster ids per DPU,
        # ignoring heat.
        ordered = sorted(
            shards.values(), key=lambda s: (s.cluster_id, s.replica_id, s.part_id)
        )
        n = len(ordered)
        for i, shard in enumerate(ordered):
            placement[shard.shard_key] = min(i * num_dpus // n, num_dpus - 1)
    else:
        # Greedy least-heat-first with sibling repulsion: place hot
        # shards first, each onto the least-loaded DPU that holds no
        # sibling (same cluster) shard if such a DPU exists.
        dpu_heat = np.zeros(num_dpus)
        dpu_clusters: List[set] = [set() for _ in range(num_dpus)]
        ordered = sorted(shards.values(), key=lambda s: -s.heat)
        for shard in ordered:
            cand = np.argsort(dpu_heat, kind="stable")
            chosen = None
            for dpu in cand:
                if shard.cluster_id not in dpu_clusters[dpu]:
                    chosen = int(dpu)
                    break
            if chosen is None:  # more shards of a cluster than DPUs
                chosen = int(cand[0])
            placement[shard.shard_key] = chosen
            dpu_heat[chosen] += shard.heat
            dpu_clusters[chosen].add(shard.cluster_id)

    return LayoutPlan(
        shards=shards,
        placement=placement,
        replica_groups=replica_groups,
        num_dpus=num_dpus,
    )
