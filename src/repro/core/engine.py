"""The DRIM-ANN engine (§IV-A): end-to-end build + batched search.

Build pipeline (offline):

1. train a float IVF-PQ index on the corpus (optionally OPQ-rotated);
2. quantize it to the integer form DPUs require;
3. estimate cluster heat from a sample query set (Eq. 15 weights);
4. generate the load-balanced layout (split / duplicate / allocate);
5. instantiate the simulated PIM system, broadcast codebooks and the
   square LUT, and place every shard into its DPU's MRAM.

Search pipeline (online, per batch):

1. CL on the host (overlapped with DPU execution of the previous
   batch; its time is modeled with the CPU profile);
2. map located (query, cluster) pairs — plus tasks the filter deferred
   from the previous batch — to per-DPU (query, shard) tasks via the
   runtime scheduler;
3. execute RC→LC→DC→TS on the DPUs (functional + cycle-counted);
4. gather and merge per-task partial top-k into per-query results.

The engine's numeric output is invariant to layout and scheduling: for
any configuration it must equal
:meth:`~repro.core.quantized.QuantizedIndexData.reference_search`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.ann.ivfpq import IVFPQIndex, SearchResult
from repro.core import adaptive as adaptive_probing
from repro.core.adaptive import AdaptiveReport
from repro.core.breakdown import TimingBreakdown
from repro.core.config import EngineConfig
from repro.core.layout import (
    LayoutConfig,
    LayoutPlan,
    estimate_cluster_heat,
    generate_layout,
)
from repro.core.opq_preprocess import OpqPreprocessor
from repro.core.params import (
    ADAPTIVE_MODES,
    EXECUTION_MODES,
    KERNEL_BACKEND_MODES,
    PLAN_MODES,
    DatasetShape,
    IndexParams,
    SearchParams,
)
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.core.persist import load_index_bundle, save_index
from repro.core.quantized import QuantizedIndexData, build_quantized_index
from repro.core.results import SearchOutcome
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig
from repro.core.square_lut import SquareLut
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultStats
from repro.obs.observer import EngineObserver
from repro.pim.config import PimSystemConfig
from repro.pim.system import PimSystem, ShardData
from repro.utils import check_2d, ensure_rng, merge_topk_pools


@dataclass
class EngineReport:
    """Build-time provenance of an engine instance."""

    params: IndexParams
    layout_heat_per_dpu: np.ndarray
    mram_used_per_dpu: np.ndarray
    num_shards: int
    offline_transfer_seconds: float
    replica_counts: Dict[int, int]


def _rows_slice(rows: np.ndarray) -> Union[slice, np.ndarray]:
    """A basic slice equivalent to contiguous ascending row indices.

    Layout parts are ``np.array_split`` ranges, so this almost always
    returns a slice — indexing with it yields a zero-copy view (fancy
    indexing would copy), which keeps mmap-loaded clusters unmaterialized
    all the way into shard placement and the shared-memory arena.
    """
    rows = np.asarray(rows)
    if rows.size and int(rows[-1]) - int(rows[0]) + 1 == rows.size:
        return slice(int(rows[0]), int(rows[-1]) + 1)
    return rows


class DrimAnnEngine:
    """DRIM-ANN: cluster-based ANN search on a (simulated) DRAM-PIM."""

    def __init__(
        self,
        quantized: QuantizedIndexData,
        params: IndexParams,
        search_params: SearchParams,
        system: PimSystem,
        plan: LayoutPlan,
        scheduler: RuntimeScheduler,
        report: EngineReport,
        cpu_profile: Optional[HardwareProfile] = None,
        preprocessor: Optional[OpqPreprocessor] = None,
        observer: Optional[EngineObserver] = None,
    ) -> None:
        self.quantized = quantized
        self.params = params
        self.search_params = search_params
        self.system = system
        self.plan = plan
        self.scheduler = scheduler
        self.report = report
        self.cpu_profile = cpu_profile or HardwareProfile.for_cpu()
        self.preprocessor = preprocessor
        self.observer = observer
        self.scheduler.observer = observer
        self.system.observer = observer
        # Lifecycle state (populated by from_quantized / load / save).
        self._config: Optional[EngineConfig] = None
        self.cluster_heat: Optional[np.ndarray] = None
        self.index_path: Optional[str] = None
        self._unloaded = False
        # Adaptive-probing state: per-cluster reconstruction radii
        # (lazy; persisted as the optional v2 "cluster_radii" segment)
        # and the codeword-norm table that incrementally maintains them.
        self._radii_sq: Optional[np.ndarray] = None
        self._radii_disabled = False
        self._cb_norms_sq: Optional[np.ndarray] = None

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self.system.fault_plan

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the data plane: worker pool + shared-memory arena.

        Idempotent; after close the engine still answers searches (a
        later pool-eligible round transparently re-hosts the arena and
        respawns workers — close again when done). Use the engine as a
        context manager to make teardown automatic —
        :func:`repro.pim.parallel.assert_no_leaked_segments` can then
        verify nothing leaked.
        """
        if self.system is not None:
            self.system.close()

    def __enter__(self) -> "DrimAnnEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_loaded(self) -> None:
        if self._unloaded:
            raise RuntimeError(
                "engine is unloaded; re-open it with DrimAnnEngine.load(path)"
            )

    def save(self, path: str) -> None:
        """Persist the index (v2 format) for :meth:`load`, atomically.

        Writes the quantized index plus the cluster-heat vector the
        layout was generated from (so a reload reproduces the exact
        shard layout and cycle ledgers) and the OPQ preprocessor if one
        is attached. Tombstones are stored as-is; run :meth:`compact`
        first to reclaim them.
        """
        self._check_loaded()
        radii = self._radii_sq
        if radii is None:
            # Compute fresh radii so the file always carries the
            # adaptive segment — re-saving an old (radii-less) file
            # upgrades it, and re-enables bound checks on this engine.
            radii = adaptive_probing.cluster_radii_sq(self.quantized)
            self._radii_sq = radii
            self._radii_disabled = False
        save_index(
            self.quantized,
            path,
            cluster_heat=self.cluster_heat,
            preprocessor=self.preprocessor,
            cluster_radii=radii,
        )
        self.index_path = path

    @classmethod
    def load(
        cls,
        path: str,
        config: Optional[EngineConfig] = None,
        *,
        heat_queries: Optional[np.ndarray] = None,
        mmap: bool = True,
        cpu_profile: Optional[HardwareProfile] = None,
        tracer=None,
        seed=None,
    ) -> "DrimAnnEngine":
        """Cold-start an engine from an index file — a load, not a rebuild.

        v2 files open as :func:`numpy.memmap` views (``mmap=False``
        materializes them); shard placement slices those views, so the
        only copy on the cold-start path is the arena publish. With
        ``config=None`` the index parameters are derived from the file
        (nprobe defaults to ``min(8, nlist)``, k to 10); an explicit
        config must agree with the file's nlist/M/CB. Search behaviour
        is bit-exact vs. the engine that saved the file: the stored
        cluster-heat vector reproduces the layout (pass ``heat_queries``
        to re-estimate instead). Timings land on the observer as
        ``drimann_index_load_seconds{phase="open"|"assemble"}`` — they
        are observability data, never part of search results
        (drimsan: allow wallclock-in-result).
        """
        t0 = time.perf_counter()
        bundle = load_index_bundle(path, mmap=mmap)
        open_seconds = time.perf_counter() - t0
        quantized = bundle.index
        if config is None:
            config = EngineConfig(
                index=IndexParams(
                    nlist=quantized.nlist,
                    nprobe=min(8, quantized.nlist),
                    k=10,
                    num_subspaces=quantized.num_subspaces,
                    codebook_size=quantized.codebook_size,
                )
            )
        else:
            if config.use_opq:
                raise ValueError(
                    "use_opq trains on a raw corpus; load() restores any "
                    "OPQ transform from the index file itself"
                )
            p = config.index
            for name, got, want in (
                ("nlist", p.nlist, quantized.nlist),
                ("num_subspaces", p.num_subspaces, quantized.num_subspaces),
                ("codebook_size", p.codebook_size, quantized.codebook_size),
            ):
                if got != want:
                    raise ValueError(
                        f"config.index.{name}={got} does not match the "
                        f"index file {path!r} ({name}={want})"
                    )
        t1 = time.perf_counter()
        engine = cls.from_quantized(
            quantized,
            config,
            heat_queries=heat_queries,
            cluster_heat=bundle.cluster_heat if heat_queries is None else None,
            cpu_profile=cpu_profile,
            tracer=tracer,
            preprocessor=bundle.preprocessor,
            seed=seed,
            index_path=path,
            cluster_radii=bundle.cluster_radii,
        )
        # Older files have no radii segment: adaptive bound checks
        # gracefully disable instead of recomputing behind the caller's
        # back from a possibly-mmapped code store (save() upgrades).
        engine._radii_disabled = bundle.cluster_radii is None
        assemble_seconds = time.perf_counter() - t1
        obs = engine.observer
        if obs is not None:
            obs.on_index_load("open", open_seconds)
            obs.on_index_load("assemble", assemble_seconds)
            obs.on_tombstones(quantized.tombstone_ratio)
        return engine

    def unload(self) -> None:
        """Release every search resource; the engine becomes inert.

        Tears down the worker pool and shared-memory arena and drops the
        index arrays (for an mmap-backed index this releases the
        mapping). Any subsequent search/save/mutation raises
        ``RuntimeError`` — re-open with :meth:`load`. Idempotent.
        """
        if self._unloaded:
            return
        self.close()
        self.quantized = None  # type: ignore[assignment]
        self.system = None  # type: ignore[assignment]
        self.plan = None  # type: ignore[assignment]
        self.scheduler = None  # type: ignore[assignment]
        self._radii_sq = None
        self._cb_norms_sq = None
        self._unloaded = True

    # ------------------------------------------------------------- mutation
    def _sync_liveness(self) -> None:
        """Push per-shard live-row filters into the PIM system."""
        masks = self.quantized.tombstone_masks()
        for key, shard in self.plan.shards.items():
            live = None
            if masks is not None:
                dead = np.asarray(masks[shard.cluster_id])[shard.point_rows]
                if dead.any():
                    live = np.flatnonzero(~dead)
            self.system.set_shard_liveness(key, live)

    def add(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Encode and append new vectors to the serving engine.

        Vectors run through the OPQ transform (if any), are assigned and
        PQ-encoded with the trained index
        (:meth:`~repro.core.quantized.QuantizedIndexData.encode`), and
        land in the *last part* of every replica of their cluster — the
        one whose row range ends at the cluster's old size, so every
        shard stays a contiguous (zero-copy-able) row range. The
        appended rows' host→PIM transfer is charged, and the
        scheduler's per-group cost cache is rebuilt so load balancing
        sees the new sizes. Returns the assigned point ids.
        """
        self._check_loaded()
        vectors = check_2d(vectors, "vectors")
        if self.preprocessor is not None:
            vectors = self.preprocessor.transform(vectors)
        old_sizes = self.quantized.cluster_sizes()
        new_ids, assign = self.quantized.add(vectors, ids)
        if len(new_ids) == 0:
            return new_ids
        quantized = self.quantized
        added_bytes = 0.0
        for cid in (int(c) for c in np.unique(assign)):
            n_old = int(old_sizes[cid])
            n_new = len(quantized.cluster_ids[cid])
            row_bytes = (
                quantized.cluster_codes[cid].dtype.itemsize
                * quantized.num_subspaces
                + 8
            )
            for group in self.plan.replica_groups[cid]:
                key = group[-1]  # the part whose row range ends at n_old
                shard = self.plan.shards[key]
                rows = shard.point_rows
                start = int(rows[0]) if len(rows) else n_old
                shard.point_rows = np.arange(start, n_new, dtype=np.int64)
                self.system.update_shard(
                    key,
                    quantized.cluster_ids[cid][start:n_new],
                    quantized.cluster_codes[cid][start:n_new],
                )
                added_bytes += (n_new - n_old) * row_bytes
        self.report.offline_transfer_seconds += self.system.transfer.scatter(
            "shards", added_bytes
        )
        self.report.mram_used_per_dpu = self.system.mram_usage()
        if quantized.has_tombstones:
            self._sync_liveness()
        # Keep cached reconstruction radii an upper bound: max-update
        # the touched clusters from the appended rows only (a radius can
        # only grow on append; delete() keeps it valid conservatively).
        if self._radii_sq is not None:
            if self._cb_norms_sq is None:
                self._cb_norms_sq = adaptive_probing.codebook_norms_sq(
                    quantized.codebooks
                )
            for cid in (int(c) for c in np.unique(assign)):
                n_old = int(old_sizes[cid])
                new_codes = quantized.cluster_codes[cid][n_old:]
                if len(new_codes):
                    r = int(
                        adaptive_probing.reconstruction_norms_sq(
                            self._cb_norms_sq, new_codes
                        ).max()
                    )
                    if r > self._radii_sq[cid]:
                        self._radii_sq[cid] = r
        # The scheduler precomputes per-group latency from shard sizes;
        # rebuild it (cheap) so predictions track the grown shards.
        scheduler = RuntimeScheduler(self.plan, self.scheduler.config)
        scheduler.adopt_fault_state(self.scheduler)
        self.scheduler = scheduler
        return new_ids

    def delete(self, ids: np.ndarray) -> int:
        """Tombstone points by id; returns how many were newly deleted.

        Deleted rows stay resident (DC still streams and is charged for
        them — the ledger stays honest) but are filtered out of every
        scan before top-k, so they can never appear in results.
        :meth:`compact` reclaims the space.
        """
        self._check_loaded()
        count = self.quantized.delete(ids)
        if count:
            self._sync_liveness()
        if self.observer is not None:
            self.observer.on_tombstones(self.quantized.tombstone_ratio)
        return count

    def compact(
        self,
        *,
        heat_queries: Optional[np.ndarray] = None,
        save_to: Optional[str] = None,
        seed=None,
    ) -> Dict[str, object]:
        """Re-encode survivors, rebalance the layout, replace the file.

        Builds a fresh fully-materialized index holding only live rows,
        regenerates the DPU layout from current cluster heat (estimated
        from ``heat_queries`` when given, else live sizes), writes the
        new segments atomically over ``save_to`` (default: the path the
        engine was loaded from / last saved to — skipped if neither), and
        only then swaps the in-memory state. A crash mid-write leaves
        both the old file and the running engine fully usable.
        """
        self._check_loaded()
        removed = self.quantized.num_tombstones
        new_quantized = self.quantized.compact()
        config = self._config
        if config is None:
            config = EngineConfig(
                index=self.params,
                search=self.search_params,
                system=self.system.config,
            )
        fresh = DrimAnnEngine.from_quantized(
            new_quantized,
            config,
            heat_queries=heat_queries,
            cpu_profile=self.cpu_profile,
            preprocessor=self.preprocessor,
            seed=seed,
            index_path=self.index_path,
        )
        new_radii = adaptive_probing.cluster_radii_sq(new_quantized)
        target = save_to if save_to is not None else self.index_path
        if target is not None:
            try:
                save_index(
                    new_quantized,
                    target,
                    cluster_heat=fresh.cluster_heat,
                    preprocessor=self.preprocessor,
                    cluster_radii=new_radii,
                )
            except BaseException:
                # Crash-safe: the staged temp file is already cleaned up
                # by the writer; drop the half-built replacement system
                # and leave this engine (and the old file) untouched.
                fresh.close()
                raise
        self.close()
        self.quantized = fresh.quantized
        self.system = fresh.system
        self.plan = fresh.plan
        self.scheduler = fresh.scheduler
        self.report = fresh.report
        self.cluster_heat = fresh.cluster_heat
        self._radii_sq = new_radii
        self._radii_disabled = False
        self._cb_norms_sq = None
        self.index_path = target if target is not None else self.index_path
        # Keep the original observer wiring (fresh carried its own).
        self.system.observer = self.observer
        self.scheduler.observer = self.observer
        if self.observer is not None:
            self.observer.on_tombstones(0.0)
        return {
            "removed_tombstones": removed,
            "num_points": new_quantized.num_points,
            "path": target,
        }

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        base: np.ndarray,
        params: IndexParams,
        *,
        search_params: SearchParams = SearchParams(),
        system_config: PimSystemConfig = PimSystemConfig(),
        layout_config: LayoutConfig = LayoutConfig(),
        heat_queries: Optional[np.ndarray] = None,
        use_opq: bool = False,
        prebuilt_index: Optional[IVFPQIndex] = None,
        prebuilt_quantized: Optional[QuantizedIndexData] = None,
        cpu_profile: Optional[HardwareProfile] = None,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
        seed=None,
    ) -> "DrimAnnEngine":
        """Deprecated: bundle the config kwargs into an
        :class:`~repro.core.config.EngineConfig` and call
        :meth:`from_config` instead. This shim forwards unchanged.
        """
        warnings.warn(
            "DrimAnnEngine.build(...) is deprecated; use "
            "DrimAnnEngine.from_config(dataset, EngineConfig(index=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        config = EngineConfig(
            index=params,
            search=search_params,
            layout=layout_config,
            system=system_config,
            faults=fault_plan,
            use_opq=use_opq,
        )
        return cls.from_config(
            base,
            config,
            heat_queries=heat_queries,
            prebuilt_index=prebuilt_index,
            prebuilt_quantized=prebuilt_quantized,
            cpu_profile=cpu_profile,
            tracer=tracer,
            seed=seed,
        )

    @classmethod
    def from_config(
        cls,
        dataset: np.ndarray,
        config: EngineConfig,
        *,
        heat_queries: Optional[np.ndarray] = None,
        prebuilt_index: Optional[IVFPQIndex] = None,
        prebuilt_quantized: Optional[QuantizedIndexData] = None,
        cpu_profile: Optional[HardwareProfile] = None,
        tracer=None,
        seed=None,
    ) -> "DrimAnnEngine":
        """Train, quantize, lay out, and load the engine.

        ``heat_queries`` is the sample query set used to estimate
        cluster access frequency (paper: "the accessing frequency of
        each cluster is estimated by a sample query set"); when absent,
        heat falls back to cluster sizes (size correlates with access
        frequency, §IV-C). ``prebuilt_index`` / ``prebuilt_quantized``
        skip training when sweeping layout/scheduling knobs on a fixed
        index.

        ``config.faults`` (see :mod:`repro.faults`) injects
        deterministic DPU crashes, stragglers, transient kernel faults,
        and transfer timeouts; :meth:`search` recovers via replica
        failover and reports degradation in ``breakdown.faults``.
        ``config.obs`` switches on the :mod:`repro.obs` metrics layer.
        """
        params = config.index
        use_opq = config.use_opq
        base = check_2d(dataset, "base")
        params.validate_for(base.shape[1])
        rng = ensure_rng(seed)

        # OPQ as a host-side preprocessing transform: the FPU-less DPUs
        # need uint8 data, so the rotation is folded into a rotate +
        # requantize step applied to the corpus now and to every query
        # at search time (see repro.core.opq_preprocess).
        preprocessor = None
        if use_opq:
            if prebuilt_quantized is not None or prebuilt_index is not None:
                raise ValueError(
                    "use_opq must train from the raw corpus; do not pass "
                    "prebuilt indexes with it"
                )
            preprocessor = OpqPreprocessor.train(
                base, params.num_subspaces, seed=rng
            )
            base = preprocessor.transform(base)
            if heat_queries is not None:
                heat_queries = preprocessor.transform(heat_queries)

        if prebuilt_quantized is not None:
            quantized = prebuilt_quantized
        else:
            index = prebuilt_index
            if index is None:
                index = IVFPQIndex.build(
                    base,
                    nlist=params.nlist,
                    num_subspaces=params.num_subspaces,
                    codebook_size=params.codebook_size,
                    seed=rng,
                )
            quantized = build_quantized_index(index)

        return cls.from_quantized(
            quantized,
            config,
            heat_queries=heat_queries,
            cpu_profile=cpu_profile,
            tracer=tracer,
            preprocessor=preprocessor,
            seed=rng,
        )

    @classmethod
    def from_quantized(
        cls,
        quantized: QuantizedIndexData,
        config: EngineConfig,
        *,
        heat_queries: Optional[np.ndarray] = None,
        cluster_heat: Optional[np.ndarray] = None,
        cpu_profile: Optional[HardwareProfile] = None,
        tracer=None,
        preprocessor: Optional[OpqPreprocessor] = None,
        seed=None,
        index_path: Optional[str] = None,
        cluster_radii: Optional[np.ndarray] = None,
    ) -> "DrimAnnEngine":
        """Assemble an engine around an existing quantized index.

        The training-free half of :meth:`from_config`: layout, PIM
        system bring-up, and shard placement — and the core of
        :meth:`load`. Heat precedence: an explicit ``cluster_heat``
        vector (e.g. the one stored in a v2 index file, which makes the
        reloaded layout — and therefore the cycle ledgers — bit-exact),
        else an estimate from ``heat_queries``, else the live-size
        fallback. ``preprocessor`` attaches an already-trained OPQ
        transform (``heat_queries`` must already be in its domain).
        """
        params = config.index
        search_params = config.search
        system_config = config.system
        layout_config = config.layout
        fault_plan = config.faults
        params.validate_for(quantized.dim)
        rng = ensure_rng(seed)

        if quantized.nlist != params.nlist:
            raise ValueError(
                f"index nlist {quantized.nlist} != params.nlist {params.nlist}"
            )

        # --- WRAM budget check: per-task ADC LUT + square LUT + reserve.
        square_lut = SquareLut.for_bit_width(8, levels=3)
        wram_needed = (
            search_params.adc_lut_bytes(params)
            + (square_lut.resident_bytes if search_params.multiplier_less else 0)
            + search_params.wram_reserve_bytes
        )
        if wram_needed > system_config.dpu.wram_bytes:
            raise ValueError(
                f"configuration needs {wram_needed} B of WRAM "
                f"(ADC LUT {search_params.adc_lut_bytes(params)} B + square LUT) "
                f"but DPUs have {system_config.dpu.wram_bytes} B; "
                "reduce num_subspaces x codebook_size"
            )

        # --- Eq. 15 coefficients from the kernel cost model.
        d = quantized.dim
        m = params.num_subspaces
        cb = params.codebook_size
        lut_latency = 2.0 * d * cb + d * cb + 2.0 * m * cb  # LC slots/task
        per_point_calc = 3.0 * m - 1.0  # DC slots/point
        per_point_sort = 2.0  # TS compare + amortized sift

        # --- heat estimation.
        weights_kw = dict(
            lut_weight=lut_latency, point_weight=per_point_calc + per_point_sort
        )
        if cluster_heat is not None:
            heat = np.asarray(cluster_heat, dtype=np.float64)
            if heat.shape != (quantized.nlist,):
                raise ValueError(
                    f"cluster_heat must have shape ({quantized.nlist},), "
                    f"got {heat.shape}"
                )
        elif heat_queries is not None:
            heat = estimate_cluster_heat(
                quantized, heat_queries, params.nprobe, **weights_kw
            )
        else:
            sizes = quantized.cluster_live_sizes().astype(np.float64)
            heat = sizes * (weights_kw["point_weight"]) + weights_kw["lut_weight"]

        plan = generate_layout(
            quantized, system_config.num_dpus, heat, layout_config, seed=rng
        )
        # (Fault plan vs. system cross-checks live in EngineConfig.)

        # --- observability (None when config.obs is disabled).
        observer = config.obs.create(
            tracer=tracer, frequency_hz=system_config.dpu.frequency_hz
        )
        if observer is not None:
            observer.on_wram_peak(wram_needed)

        # --- load the PIM system.
        system = PimSystem(
            system_config,
            tracer=tracer,
            fault_plan=fault_plan,
            observer=observer,
        )
        offline_xfer = system.load_codebooks(quantized.codebooks)
        offline_xfer += system.load_square_lut(square_lut)
        if search_params.cluster_locate_on == "pim":
            offline_xfer += system.load_centroid_slices(quantized.centroids)
        for key, shard in plan.shards.items():
            cid = shard.cluster_id
            # Contiguous row ranges become basic slices: the ShardData
            # then holds zero-copy views into the cluster arrays — for
            # an mmap-loaded index, placement (and the arena publish
            # that copies these into shared memory) never materializes
            # an intermediate per-shard copy.
            rows = _rows_slice(shard.point_rows)
            system.place_shard(
                plan.placement[key],
                ShardData(
                    shard_key=key,
                    centroid=quantized.centroids[cid],
                    ids=quantized.cluster_ids[cid][rows],
                    codes=quantized.cluster_codes[cid][rows],
                ),
            )
        # Shard payloads also traverse the host channel once, offline
        # (byte count from shapes alone — no array materialization).
        code_row_bytes = (
            quantized.codebooks.shape[0]
            * (1 if quantized.codebook_size <= 256 else 2)
            if quantized.nlist == 0
            else quantized.cluster_codes[0].dtype.itemsize
            * quantized.num_subspaces
        )
        total_bytes = float(
            sum(
                s.num_points * (code_row_bytes + 8) + quantized.dim
                for s in plan.shards.values()
            )
        )
        offline_xfer += system.transfer.scatter("shards", total_bytes)

        scheduler = RuntimeScheduler(
            plan,
            replace(
                config.scheduler,
                lut_latency=lut_latency,
                per_point_calc=per_point_calc,
                per_point_sort=per_point_sort,
            ),
        )
        if fault_plan is not None:
            # Stragglers are assumed profiled (UpANNS measures per-DPU
            # frequency once at boot): the predictor is re-weighted by
            # each DPU's derated clock from the start. Fail-stops are
            # *not* pre-blacklisted — the engine discovers them when
            # tasks fail and blacklists reactively.
            scheduler.set_speed_factors(fault_plan.derates)
        report = EngineReport(
            params=params,
            layout_heat_per_dpu=plan.heat_per_dpu(),
            mram_used_per_dpu=system.mram_usage(),
            num_shards=len(plan.shards),
            offline_transfer_seconds=offline_xfer,
            replica_counts={c: len(g) for c, g in plan.replica_groups.items()},
        )
        engine = cls(
            quantized=quantized,
            params=params,
            search_params=search_params,
            system=system,
            plan=plan,
            scheduler=scheduler,
            report=report,
            cpu_profile=cpu_profile,
            preprocessor=preprocessor,
            observer=observer,
        )
        engine._config = config
        engine.cluster_heat = heat
        engine.index_path = index_path
        if cluster_radii is not None:
            radii = np.array(cluster_radii, dtype=np.int64)
            if radii.shape != (quantized.nlist,):
                raise ValueError(
                    f"cluster_radii must have shape ({quantized.nlist},), "
                    f"got {radii.shape}"
                )
            engine._radii_sq = radii
        if quantized.has_tombstones:
            engine._sync_liveness()
        return engine

    # ------------------------------------------------------------------ search
    def _host_cl_seconds(self, num_queries: int) -> float:
        """Modeled host time for the CL phase of one batch."""
        shape = DatasetShape(
            num_points=self.quantized.num_points,
            dim=self.quantized.dim,
            num_queries=num_queries,
        )
        model = AnalyticPerfModel(shape, self.cpu_profile)
        return model.phase(self.params, "CL").seconds

    def cluster_radii_sq(self) -> Optional[np.ndarray]:
        """Per-cluster squared reconstruction radii (lazily computed).

        The statistic behind adaptive distance-bound termination (see
        :mod:`repro.core.adaptive`). Engines loaded from index files
        without the optional ``cluster_radii`` segment return ``None``
        — bound checks gracefully disable rather than recompute from a
        possibly-mmapped code store behind the caller's back; a
        :meth:`save` computes fresh radii and upgrades the file.
        """
        self._check_loaded()
        if self._radii_sq is None and not self._radii_disabled:
            self._radii_sq = adaptive_probing.cluster_radii_sq(self.quantized)
        return self._radii_sq

    def _centroid_distances(
        self, queries: np.ndarray, probes: np.ndarray
    ) -> np.ndarray:
        """Exact int64 squared distances to each query's probe centroids.

        Same integer math as :meth:`QuantizedIndexData.locate`; invalid
        (``-1``) probe slots produce values for centroid 0 — callers
        mask them out. Used when the probe set arrives externally (the
        frontend's ``probes=`` path or CL-on-PIM) and the adaptive path
        still needs the distance statistics.
        """
        q = queries.astype(np.int64)
        cents = self.quantized.centroids.astype(np.int64)
        qq = np.einsum("ij,ij->i", q, q)
        safe = np.maximum(np.asarray(probes), 0)
        c = cents[safe]  # (nb, p, d)
        cc = np.einsum("bpd,bpd->bp", c, c)
        qc = np.einsum("bd,bpd->bp", q, c)
        return qq[:, None] + cc - 2 * qc

    def search(
        self,
        queries: np.ndarray,
        *,
        with_scheduler: bool = True,
        execution: Optional[str] = None,
        plan: Optional[str] = None,
        probes: Optional[np.ndarray] = None,
        adaptive: Optional[str] = None,
        kernel_backend: Optional[str] = None,
    ) -> SearchOutcome:
        """Batched top-k search.

        Returns a :class:`~repro.core.results.SearchOutcome` carrying
        the results, timing breakdown, fault stats, and (when
        observability is on) a metrics snapshot. The outcome unpacks
        like the historical two-tuple:
        ``results, breakdown = engine.search(queries)``.

        ``execution`` overrides ``search_params.execution`` for this
        call: ``"batched"`` dispatches the whole query matrix as one
        PIM round, ``"chunked"`` rounds of ``batch_size`` queries, and
        ``"per_query"`` one query per round (the pre-batching
        behaviour, kept as the differential-testing baseline). All
        three produce bit-identical results — per-query partials merge
        with a canonical (distance, id) tie-break — and identical
        aggregate kernel-cycle totals; only round structure, transfer
        aggregation, and host wall-clock differ.

        ``plan`` overrides ``search_params.plan`` for this call: the
        data-plane strategy for each round's functional shard scans
        (``"auto"`` / ``"serial"`` / ``"vectorized"`` / ``"pool"`` —
        see :mod:`repro.pim.parallel`). Like ``execution``, this is
        purely a wall-clock choice; results and cycle ledgers are
        identical on every path.

        ``kernel_backend`` overrides ``search_params.kernel_backend``
        for this call: the host-side kernel implementation for the
        scans and LUT builds (``"auto"`` / ``"numpy"`` / ``"numba"`` —
        see :mod:`repro.pim.backend`). Every backend is bit-identical
        and the cycle ledgers are charged from closed forms over
        shapes, so this too moves host wall-clock only.

        ``with_scheduler=False`` forces the static policy (replica 0,
        no filter) — the ablation arm of Fig. 11.

        ``probes`` skips cluster location entirely and probes the given
        per-query cluster ids instead: an ``(nq, p)`` int array of
        cluster ids local to this engine's index, padded with ``-1``
        for queries that probe fewer than ``p`` clusters here. This is
        the cluster frontend's routing path — the rack-level frontend
        locates against the *global* coarse index once and hands each
        shard only the probes it owns, so no per-shard CL host time is
        charged (the frontend accounts for the global CL itself).

        ``adaptive`` overrides ``search_params.adaptive`` for this
        call (``"off"`` / ``"bound"`` / ``"budget"`` / ``"full"`` — see
        :mod:`repro.core.adaptive`). ``"bound"`` stops each query as
        soon as its k-th distance provably beats every remaining
        cluster's lower bound — results stay bit-identical to
        ``"off"``, only work (and therefore charged cycles) shrinks.
        ``"budget"`` picks a per-query probe budget from the
        centroid-distance gap profile; ``"full"`` combines both. With
        an explicit ``probes=`` matrix the budget heuristic is skipped
        (the caller already chose the probe set — the rack frontend
        applies global budgets before scattering) but bound-based
        termination still applies. The outcome's ``adaptive`` field
        reports what was actually probed.

        Under a fault plan, tasks lost to fail-stopped DPUs are
        re-dispatched to surviving replicas with exponential backoff
        charged to the run; dead DPUs are blacklisted in the scheduler.
        Tasks with no surviving replica are dropped: the affected
        queries return the partial top-k that could be computed, and
        ``breakdown.faults`` carries per-query coverage plus the
        ``degraded`` flag (the engine never raises on a fault).
        """
        self._check_loaded()
        queries = check_2d(queries, "queries")
        if queries.shape[1] != self.quantized.dim:
            raise ValueError(
                f"query dim {queries.shape[1]} != index dim {self.quantized.dim}"
            )
        if self.preprocessor is not None:
            queries = self.preprocessor.transform(queries)
        k = self.params.k
        nq = queries.shape[0]
        mode = execution if execution is not None else self.search_params.execution
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        plan_mode = plan if plan is not None else self.search_params.plan
        if plan_mode not in PLAN_MODES:
            raise ValueError(
                f"plan must be one of {PLAN_MODES}, got {plan_mode!r}"
            )
        kb_mode = (
            kernel_backend
            if kernel_backend is not None
            else self.search_params.kernel_backend
        )
        if kb_mode not in KERNEL_BACKEND_MODES:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKEND_MODES}, "
                f"got {kb_mode!r}"
            )
        if probes is not None:
            probes = np.asarray(probes)
            if probes.ndim != 2 or probes.shape[0] != nq:
                raise ValueError(
                    f"probes must be (num_queries, p), got {probes.shape}"
                )
            if probes.size and int(probes.max()) >= self.quantized.nlist:
                raise ValueError(
                    f"probe cluster id {int(probes.max())} out of range "
                    f"[0, {self.quantized.nlist})"
                )
        if mode == "batched":
            bs = max(nq, 1)
        elif mode == "chunked":
            bs = self.search_params.batch_size
        else:  # per_query
            bs = 1
        amode = adaptive if adaptive is not None else self.search_params.adaptive
        if amode not in ADAPTIVE_MODES:
            raise ValueError(
                f"adaptive must be one of {ADAPTIVE_MODES}, got {amode!r}"
            )
        if amode != "off" and nq:
            use_bound = (
                amode in ("bound", "full")
                and self.cluster_radii_sq() is not None
            )
            use_budget = amode in ("budget", "full") and probes is None
            if use_bound or use_budget:
                return self._search_adaptive(
                    queries,
                    k=k,
                    nq=nq,
                    bs=bs,
                    plan_mode=plan_mode,
                    kb_mode=kb_mode,
                    probes=probes,
                    with_scheduler=with_scheduler,
                    amode=amode,
                    use_bound=use_bound,
                    use_budget=use_budget,
                )
            # Degenerate (e.g. radii-less old index under "bound"):
            # fall through to the exhaustive path unchanged.
        obs = self.observer
        if obs is not None:
            obs.on_search_start(nq)

        scheduler = self.scheduler
        if not with_scheduler:
            scheduler = RuntimeScheduler(
                self.plan,
                SchedulerConfig(
                    lut_latency=self.scheduler.config.lut_latency,
                    per_point_calc=self.scheduler.config.per_point_calc,
                    per_point_sort=self.scheduler.config.per_point_sort,
                    filter_threshold=None,
                    policy="static",
                ),
            )
            scheduler.adopt_fault_state(self.scheduler)

        stats = FaultStats()
        if self.fault_plan is not None:
            stats.straggler_dpus = set(self.fault_plan.straggler_dpus)

        pools_i: List[List[np.ndarray]] = [[] for _ in range(nq)]
        pools_d: List[List[np.ndarray]] = [[] for _ in range(nq)]
        breakdown = TimingBreakdown()
        breakdown.faults = stats
        carried: List[Tuple[int, int]] = []

        cl_on_pim = self.search_params.cluster_locate_on == "pim"
        batch_starts = list(range(0, nq, bs))
        for bi, q0 in enumerate(batch_starts):
            q1 = min(q0 + bs, nq)
            if probes is not None:
                batch_probes = probes[q0:q1]
                cl_sec, cl_cycles = 0.0, 0.0
                host_s = 0.0
            elif cl_on_pim:
                batch_probes, cl_sec, cl_cycles = self.system.locate_on_pim(
                    queries[q0:q1], self.params.nprobe
                )
                host_s = 0.0
            else:
                batch_probes = self.quantized.locate(
                    queries[q0:q1], self.params.nprobe
                )
                cl_sec, cl_cycles = 0.0, 0.0
                host_s = self._host_cl_seconds(q1 - q0)
            tasks = list(carried)
            for local, qidx in enumerate(range(q0, q1)):
                tasks.extend(
                    (qidx, int(c)) for c in batch_probes[local] if c >= 0
                )
            outcome = scheduler.schedule_batch(tasks)
            carried = list(outcome.deferred)
            stats.uncovered.update(outcome.uncovered)
            # Fault plans index events by logical (batch_size) batches;
            # a batched round spans all the logical batches it covers.
            span = -(-(q1 - q0) // self.search_params.batch_size)
            failed = self._execute(
                outcome.assignments, queries, k, pools_i, pools_d, breakdown,
                host_seconds=host_s,
                num_new_queries=q1 - q0,
                extra_pim_seconds=cl_sec,
                extra_cl_cycles=cl_cycles,
                batch_span=max(span, 1),
                plan=plan_mode,
                kernel_backend=kb_mode,
            )
            self._recover(
                failed, scheduler, queries, k, pools_i, pools_d, breakdown,
                plan=plan_mode, kernel_backend=kb_mode,
            )

        # Drain deferred tasks (filter off so the queue empties).
        drain_guard = 0
        while carried:
            drain_guard += 1
            if drain_guard > 100:
                raise RuntimeError("scheduler failed to drain deferred tasks")
            drain_sched = RuntimeScheduler(
                self.plan,
                SchedulerConfig(
                    lut_latency=scheduler.config.lut_latency,
                    per_point_calc=scheduler.config.per_point_calc,
                    per_point_sort=scheduler.config.per_point_sort,
                    filter_threshold=None,
                    policy=scheduler.config.policy,
                ),
            )
            drain_sched.adopt_fault_state(scheduler)
            outcome = drain_sched.schedule_batch(carried)
            carried = list(outcome.deferred)
            stats.uncovered.update(outcome.uncovered)
            failed = self._execute(
                outcome.assignments, queries, k, pools_i, pools_d, breakdown,
                host_seconds=0.0, num_new_queries=0, plan=plan_mode,
                kernel_backend=kb_mode,
            )
            self._recover(
                failed, drain_sched, queries, k, pools_i, pools_d, breakdown,
                plan=plan_mode, kernel_backend=kb_mode,
            )
            # Deaths discovered while draining must stick for the next
            # drain round (and for subsequent search() calls).
            scheduler.mark_dead(drain_sched.dead_dpus - scheduler.dead_dpus)

        stats.finalize(num_queries=nq, nprobe=self.params.nprobe)
        if obs is not None:
            obs.on_faults(stats)

        out_ids, out_dist = merge_topk_pools(pools_i, pools_d, nq, k)
        return SearchOutcome(
            results=SearchResult(ids=out_ids, distances=out_dist),
            breakdown=breakdown,
            metrics=obs.snapshot() if obs is not None else None,
        )

    def _search_adaptive(
        self,
        queries: np.ndarray,
        *,
        k: int,
        nq: int,
        bs: int,
        plan_mode: str,
        kb_mode: str,
        probes: Optional[np.ndarray],
        with_scheduler: bool,
        amode: str,
        use_bound: bool,
        use_budget: bool,
    ) -> SearchOutcome:
        """The adaptive arm of :meth:`search` (``adaptive != "off"``).

        Probes are dispatched in *rounds* — one cluster per still-active
        query per round — so each query can stop the moment its k-th
        distance beats the suffix-minimum lower bound of its remaining
        clusters (``use_bound``), or when its gap-heuristic budget is
        spent (``use_budget``). Everything else reuses the exhaustive
        path's machinery: the runtime scheduler maps each round's
        shrunken work list, ``_execute``/``_recover`` run and charge it,
        and the CL/RC/LC/DC/TS ledger therefore contains *only* clusters
        actually dispatched (kernel costs are linear in group size, so
        per-round dispatch charges exactly what a single batch of the
        same tasks would — the ledger-honesty property the conformance
        suite replays through the fixed ``probes=`` path). Host CL time
        is charged once per query batch, on its first round, exactly as
        the exhaustive path does.

        Results under ``use_bound`` alone are bit-identical to the
        exhaustive scan: the bound is conservative (see
        :mod:`repro.core.adaptive`), a partial pool's k-th distance only
        overestimates the final one, and a strict ``d_k < bound`` test
        means no remaining point can enter the top-k even on a
        (distance, id) tie.
        """
        obs = self.observer
        if obs is not None:
            obs.on_search_start(nq)

        scheduler = self.scheduler
        if not with_scheduler:
            scheduler = RuntimeScheduler(
                self.plan,
                SchedulerConfig(
                    lut_latency=self.scheduler.config.lut_latency,
                    per_point_calc=self.scheduler.config.per_point_calc,
                    per_point_sort=self.scheduler.config.per_point_sort,
                    filter_threshold=None,
                    policy="static",
                ),
            )
            scheduler.adopt_fault_state(self.scheduler)

        stats = FaultStats()
        if self.fault_plan is not None:
            stats.straggler_dpus = set(self.fault_plan.straggler_dpus)

        pools_i: List[List[np.ndarray]] = [[] for _ in range(nq)]
        pools_d: List[List[np.ndarray]] = [[] for _ in range(nq)]
        breakdown = TimingBreakdown()
        breakdown.faults = stats
        carried: List[Tuple[int, int]] = []

        radii = self.cluster_radii_sq() if use_bound else None
        nprobe_min = self.search_params.nprobe_min
        if nprobe_min is None:
            nprobe_min = max(1, self.params.nprobe // 4)
        gap = self.search_params.adaptive_gap

        executed: List[List[int]] = [[] for _ in range(nq)]
        budgets = np.zeros(nq, dtype=np.int64)
        reasons: List[str] = ["exhausted"] * nq

        cl_on_pim = self.search_params.cluster_locate_on == "pim"
        for q0 in range(0, nq, bs):
            q1 = min(q0 + bs, nq)
            nb = q1 - q0
            if probes is not None:
                batch_probes = np.asarray(probes[q0:q1])
                cl_sec, cl_cycles = 0.0, 0.0
                host_s = 0.0
                rr = self._centroid_distances(queries[q0:q1], batch_probes)
            elif cl_on_pim:
                batch_probes, cl_sec, cl_cycles = self.system.locate_on_pim(
                    queries[q0:q1], self.params.nprobe
                )
                host_s = 0.0
                rr = self._centroid_distances(queries[q0:q1], batch_probes)
            else:
                batch_probes, rr = self.quantized.locate_with_distances(
                    queries[q0:q1], self.params.nprobe
                )
                cl_sec, cl_cycles = 0.0, 0.0
                host_s = self._host_cl_seconds(nb)

            # Per-query compacted probe lists, budgets, and the
            # suffix-minimum of the remaining clusters' lower bounds.
            plists: List[np.ndarray] = []
            lb_sfx: List[Optional[np.ndarray]] = []
            limits = np.empty(nb, dtype=np.int64)
            for i in range(nb):
                row = np.asarray(batch_probes[i])
                valid = row >= 0
                plist = row[valid].astype(np.int64)
                plists.append(plist)
                limits[i] = len(plist)
                if use_bound and len(plist):
                    lb = adaptive_probing.lower_bounds(
                        rr[i][valid], radii[plist]
                    )
                    lb_sfx.append(np.minimum.accumulate(lb[::-1])[::-1])
                else:
                    lb_sfx.append(None)
                if use_budget and len(plist) > 1:
                    b = int(
                        adaptive_probing.probe_budgets(
                            rr[i][valid][None, :], nprobe_min, gap
                        )[0]
                    )
                    limits[i] = min(limits[i], b)
                budgets[q0 + i] = limits[i]

            ptr = np.zeros(nb, dtype=np.int64)
            done = limits == 0
            first_round = True
            while not done.all():
                tasks = list(carried)
                for i in range(nb):
                    if done[i]:
                        continue
                    gq = q0 + i
                    cid = int(plists[i][ptr[i]])
                    tasks.append((gq, cid))
                    executed[gq].append(cid)
                    ptr[i] += 1
                outcome = scheduler.schedule_batch(tasks)
                carried = list(outcome.deferred)
                stats.uncovered.update(outcome.uncovered)
                failed = self._execute(
                    outcome.assignments, queries, k, pools_i, pools_d,
                    breakdown,
                    host_seconds=host_s if first_round else 0.0,
                    num_new_queries=nb if first_round else 0,
                    extra_pim_seconds=cl_sec if first_round else 0.0,
                    extra_cl_cycles=cl_cycles if first_round else 0.0,
                    batch_span=1,
                    plan=plan_mode,
                    kernel_backend=kb_mode,
                )
                self._recover(
                    failed, scheduler, queries, k, pools_i, pools_d,
                    breakdown, plan=plan_mode, kernel_backend=kb_mode,
                )
                first_round = False
                for i in range(nb):
                    if done[i]:
                        continue
                    gq = q0 + i
                    if use_bound and ptr[i] < limits[i]:
                        dk = adaptive_probing.kth_pool_distance(pools_d[gq], k)
                        if dk < lb_sfx[i][ptr[i]]:
                            done[i] = True
                            reasons[gq] = "bound"
                            continue
                    if ptr[i] >= limits[i]:
                        done[i] = True
                        reasons[gq] = (
                            "budget"
                            if limits[i] < len(plists[i])
                            else "exhausted"
                        )

        # Drain deferred tasks (filter off so the queue empties).
        drain_guard = 0
        while carried:
            drain_guard += 1
            if drain_guard > 100:
                raise RuntimeError("scheduler failed to drain deferred tasks")
            drain_sched = RuntimeScheduler(
                self.plan,
                SchedulerConfig(
                    lut_latency=scheduler.config.lut_latency,
                    per_point_calc=scheduler.config.per_point_calc,
                    per_point_sort=scheduler.config.per_point_sort,
                    filter_threshold=None,
                    policy=scheduler.config.policy,
                ),
            )
            drain_sched.adopt_fault_state(scheduler)
            outcome = drain_sched.schedule_batch(carried)
            carried = list(outcome.deferred)
            stats.uncovered.update(outcome.uncovered)
            failed = self._execute(
                outcome.assignments, queries, k, pools_i, pools_d, breakdown,
                host_seconds=0.0, num_new_queries=0, plan=plan_mode,
                kernel_backend=kb_mode,
            )
            self._recover(
                failed, drain_sched, queries, k, pools_i, pools_d, breakdown,
                plan=plan_mode, kernel_backend=kb_mode,
            )
            scheduler.mark_dead(drain_sched.dead_dpus - scheduler.dead_dpus)

        stats.finalize(num_queries=nq, nprobe=self.params.nprobe)
        if obs is not None:
            obs.on_faults(stats)

        # The report (and the ledger-honesty contract) counts clusters
        # whose scans were charged: issued minus fault-uncovered. Under
        # partial shard loss the whole cluster is conservatively
        # dropped from the executed list.
        for qidx, cid in stats.uncovered:
            lst = executed[qidx]
            if int(cid) in lst:
                lst.remove(int(cid))
        probes_exec = np.array(
            [len(executed[q]) for q in range(nq)], dtype=np.int64
        )
        if obs is not None:
            for q in range(nq):
                obs.on_probes_executed(int(probes_exec[q]))
                obs.on_adaptive_stop(reasons[q])

        out_ids, out_dist = merge_topk_pools(pools_i, pools_d, nq, k)
        return SearchOutcome(
            results=SearchResult(ids=out_ids, distances=out_dist),
            breakdown=breakdown,
            metrics=obs.snapshot() if obs is not None else None,
            adaptive=AdaptiveReport(
                mode=amode,
                nprobe_max=self.params.nprobe,
                budgets=budgets,
                probes_executed=probes_exec,
                stop_reasons=reasons,
                executed=executed,
            ),
        )

    def _execute(
        self,
        assignments: Dict[int, List[Tuple[int, str]]],
        queries: np.ndarray,
        k: int,
        pools_i: List[List[np.ndarray]],
        pools_d: List[List[np.ndarray]],
        breakdown: TimingBreakdown,
        *,
        host_seconds: float,
        num_new_queries: int,
        extra_pim_seconds: float = 0.0,
        extra_cl_cycles: float = 0.0,
        batch_span: int = 1,
        plan: str = "auto",
        kernel_backend: Optional[str] = None,
    ) -> List[Tuple[int, str]]:
        """Run one PIM batch and fold results/timing in.

        ``extra_pim_seconds`` / ``extra_cl_cycles`` account a preceding
        CL-on-PIM launch (it cannot overlap with the task batch: its
        output drives the schedule).

        Returns the (global query index, shard key) tasks lost to dead
        DPUs, for the caller to fail over.
        """
        # Compact the active query set so only referenced queries are
        # broadcast (deferred tasks pull their queries into the batch).
        active = sorted(
            {qidx for tasks in assignments.values() for qidx, _ in tasks}
        )
        local_of = {qidx: i for i, qidx in enumerate(active)}
        local_assign = {
            dpu: [(local_of[qidx], key) for qidx, key in tasks]
            for dpu, tasks in assignments.items()
        }
        failed: List[Tuple[int, str]] = []
        if active:
            partials, timing = self.system.run_batch(
                local_assign,
                queries[active],
                k,
                multiplier_less=self.search_params.multiplier_less,
                batch_span=batch_span,
                plan=plan,
                kernel_backend=kernel_backend,
            )
            for p in partials:
                gq = active[p.query_index]
                if len(p.ids):
                    pools_i[gq].append(p.ids)
                    pools_d[gq].append(p.distances)
            if extra_pim_seconds or extra_cl_cycles:
                timing.pim_seconds += extra_pim_seconds
                timing.kernel_cycles["CL"] = (
                    timing.kernel_cycles.get("CL", 0.0) + extra_cl_cycles
                )
            breakdown.add_batch(timing, host_seconds, num_new_queries)
            obs = self.observer
            if obs is not None:
                cl_seconds = host_seconds + extra_pim_seconds
                if cl_seconds:
                    obs.on_phase("CL", cl_seconds)
                freq = self.system.config.dpu.frequency_hz
                for kname in ("RC", "LC", "DC", "TS"):
                    cyc = timing.kernel_cycles.get(kname, 0.0)
                    if cyc:
                        obs.on_phase(kname, cyc / freq)
            failed = [(active[lq], key) for lq, key in timing.failed_tasks]
            if breakdown.faults is not None:
                breakdown.faults.transient_faults += timing.transient_retries
                breakdown.faults.transfer_timeouts += timing.transfer_timeouts
        return failed

    def _recover(
        self,
        failed: List[Tuple[int, str]],
        scheduler: RuntimeScheduler,
        queries: np.ndarray,
        k: int,
        pools_i: List[List[np.ndarray]],
        pools_d: List[List[np.ndarray]],
        breakdown: TimingBreakdown,
        *,
        plan: str = "auto",
        kernel_backend: Optional[str] = None,
    ) -> None:
        """Fail over tasks lost to dead DPUs.

        Each round blacklists the newly-observed dead DPUs, waits out
        an exponential backoff (charged to the run's wall-clock), and
        re-dispatches the failed (query, shard) tasks to surviving
        replicas of the same part. Tasks still failing after
        ``max_redispatch_attempts`` rounds — or with no live replica —
        are recorded as uncovered; the affected queries degrade to
        partial coverage instead of raising.
        """
        stats = breakdown.faults
        fplan = self.fault_plan
        retries = (
            None if fplan is None else fplan.config.backoff_policy().sequence()
        )
        attempt = 0
        while failed:
            observed = self.system.dead_dpus()
            stats.dead_dpus |= observed
            newly = observed - scheduler.dead_dpus
            if newly:
                scheduler.mark_dead(newly)
            if fplan is None or attempt >= fplan.config.max_redispatch_attempts:
                for qidx, key in failed:
                    stats.uncovered.add(
                        (qidx, self.plan.shards[key].cluster_id)
                    )
                break
            backoff = retries.next_delay()
            breakdown.add_stall(backoff)
            stats.backoff_seconds += backoff
            stats.redispatch_rounds += 1
            assignments, uncovered = scheduler.failover_assignments(failed)
            stats.uncovered.update(uncovered)
            stats.task_retries += sum(len(t) for t in assignments.values())
            failed = self._execute(
                assignments, queries, k, pools_i, pools_d, breakdown,
                host_seconds=0.0, num_new_queries=0, plan=plan,
                kernel_backend=kernel_backend,
            )
            attempt += 1

    # ---------------------------------------------------------------- helpers
    def reference_search(self, queries: np.ndarray) -> SearchResult:
        """Host gold standard with identical integer math."""
        self._check_loaded()
        if self.preprocessor is not None:
            queries = self.preprocessor.transform(queries)
        return self.quantized.reference_search(
            queries, self.params.k, self.params.nprobe
        )
