"""One config object for the whole engine.

:class:`~repro.core.engine.DrimAnnEngine.build` grew five config
bundles plus loose kwargs; sweeping a knob meant knowing which bundle
owns it and threading the rest through untouched. :class:`EngineConfig`
replaces that with a single validated facade:

    config = EngineConfig(index=IndexParams(nlist=64, nprobe=8, k=10,
                                            num_subspaces=8))
    engine = DrimAnnEngine.from_config(base, config)

Every sub-config keeps its own ``__post_init__`` validation; this class
adds only the *cross-bundle* checks (fault plan vs. system size,
CL-on-PIM vs. capacity faults) that no sub-config can see alone.

``to_dict``/``from_dict`` round-trip the full bundle through JSON-safe
dicts, so experiment configs can live in files and CLI ``--json``
envelopes can echo the exact configuration a result came from.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.core.layout import LayoutConfig
from repro.core.params import IndexParams, SearchParams
from repro.core.scheduler import SchedulerConfig
from repro.faults.plan import FaultPlan
from repro.obs.observer import ObsConfig
from repro.pim.config import DpuConfig, PimSystemConfig, TransferConfig

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Everything :meth:`DrimAnnEngine.from_config` needs, in one bundle.

    Only ``index`` is required; every other field has the same default
    the old ``build(...)`` kwargs had. Equality across configs holding
    a :class:`FaultPlan` should compare ``to_dict()`` (the plan carries
    an ndarray, which breaks dataclass ``==``).
    """

    index: IndexParams
    search: SearchParams = field(default_factory=SearchParams)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    system: PimSystemConfig = field(default_factory=PimSystemConfig)
    faults: Optional[FaultPlan] = None
    use_opq: bool = False
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if self.faults is not None:
            if self.faults.num_dpus != self.system.num_dpus:
                raise ValueError(
                    f"fault plan covers {self.faults.num_dpus} DPUs but "
                    f"system_config has {self.system.num_dpus}"
                )
            if (
                self.search.cluster_locate_on == "pim"
                and self.faults.has_capacity_faults
            ):
                raise ValueError(
                    "fail-stop/straggler fault plans are not supported with "
                    "cluster_locate_on='pim': centroid slices are not "
                    "replicated, so a dead or derated DPU would corrupt CL; "
                    "use the default host-side CL"
                )

    def replace(self, **kw) -> "EngineConfig":
        return replace(self, **kw)

    # ----- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {
            "index": asdict(self.index),
            "search": asdict(self.search),
            "layout": asdict(self.layout),
            "scheduler": asdict(self.scheduler),
            "system": asdict(self.system),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "use_opq": self.use_opq,
            "obs": self.obs.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EngineConfig":
        system_d = dict(d.get("system", {}))
        if "dpu" in system_d:
            system_d["dpu"] = DpuConfig(**system_d["dpu"])
        if "transfer" in system_d:
            system_d["transfer"] = TransferConfig(**system_d["transfer"])
        search_d = dict(d.get("search", {}))
        faults_d = d.get("faults")
        return cls(
            index=IndexParams(**d["index"]),
            search=SearchParams(**search_d),
            layout=LayoutConfig(**d.get("layout", {})),
            scheduler=SchedulerConfig(**d.get("scheduler", {})),
            system=PimSystemConfig(**system_d),
            faults=None if faults_d is None else FaultPlan.from_dict(faults_d),
            use_opq=bool(d.get("use_opq", False)),
            obs=ObsConfig.from_dict(d.get("obs", {})),
        )
