"""The five-phase analytic performance model (§III-B, Eqs. 1–12).

For a batch of ``Q`` queries against an index with ``nlist`` clusters of
average size ``C``, probing ``P`` clusters per query with ``M``
sub-spaces, ``CB`` codebook entries and top-``K`` output, each phase
x ∈ {CL, RC, LC, DC, TS} has a computation count ``C_x`` and a memory
traffic ``IO_x``; its time on a platform is

    t_x = max(C_x / (F_x * PE_x), IO_x / BW_x)            (Eq. 11)

and its compute-to-I/O ratio is ``C2IO_x = C_x / IO_x`` (Eq. 12).

Counts follow the paper's Eqs. 1–10 with two explicit refinements:

* **Per-class operation counts.** Ops are kept per class (add-like,
  multiply, WRAM load/store, compare) and converted to issue slots
  through an :class:`~repro.pim.isa.IsaCostModel`, so the same
  formulas serve the CPU (a SIMD multiply costs one slot) and the DPU
  (a multiply costs ~32). This is what makes the multiplier-less
  conversion visible to the model.
* **Two I/O streams.** The paper's IO terms lump main-memory traffic
  (codes, codebooks, centroids) with *local* traffic (LUT gathers,
  heap updates) that actually hits CPU caches / DPU WRAM. In
  ``io_mode="split"`` (default) the two streams are priced against
  separate bandwidths and the slower bounds the phase; in
  ``io_mode="paper"`` everything is charged to main memory exactly as
  Eqs. 2/4/6/8/10 are written — the pessimistic variant used when
  reproducing the paper's own model-vs-real comparison (Fig. 10(b)).

Bit widths ``B_x`` from Table I are taken in **bytes** so that
``IO / BW`` is directly seconds against a bytes/s bandwidth.

The model deliberately ignores load imbalance and host<->PIM transfer
time (as the paper's does); Fig. 10(b) quantifies the resulting gap
against the simulator, and the load-balancing machinery closes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.params import DatasetShape, IndexParams
from repro.pim.config import PimSystemConfig
from repro.pim.isa import InstructionMix, IsaCostModel

PHASES = ("CL", "RC", "LC", "DC", "TS")


@dataclass(frozen=True)
class HardwareProfile:
    """A platform as the model sees it.

    Attributes
    ----------
    ops_per_s_per_unit: issue slots (or scalar flops) per second one
        processing unit retires.
    units: parallel processing units (DPUs, or CPU threads).
    bandwidth_bytes_per_s: aggregate main-memory bandwidth.
    local_bandwidth_bytes_per_s: aggregate local-store bandwidth (CPU
        L1/L2, DPU WRAM). ``None`` means local traffic is free (folded
        into issue slots already).
    isa: converts per-class op counts into issue slots. The CPU profile
        uses a uniform-cost ISA (SIMD multiplies are one slot); the PIM
        profile uses the UPMEM cost table.
    simd_width: elements retired per slot (CPU vectorization; 1 on DPU).
    gemm_block: query-block size of the CL distance computation. The
        centroid table is streamed from main memory once per block (the
        blocked-GEMM structure every real implementation uses), not once
        per (query, centroid) pair; charging per pair would overstate CL
        traffic by the blocking factor.
    """

    name: str
    ops_per_s_per_unit: float
    units: int
    bandwidth_bytes_per_s: float
    local_bandwidth_bytes_per_s: Optional[float] = None
    isa: IsaCostModel = field(default_factory=IsaCostModel)
    simd_width: float = 1.0
    gemm_block: int = 256

    def __post_init__(self) -> None:
        if self.ops_per_s_per_unit <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("rates must be > 0")
        if (
            self.local_bandwidth_bytes_per_s is not None
            and self.local_bandwidth_bytes_per_s <= 0
        ):
            raise ValueError("local bandwidth must be > 0 or None")
        if self.units <= 0:
            raise ValueError("units must be > 0")

    @classmethod
    def for_pim(cls, config: PimSystemConfig) -> "HardwareProfile":
        """UPMEM profile: per-DPU issue rate, aggregate MRAM + WRAM BW."""
        dpu = config.dpu
        # WRAM: one 8-byte access per cycle per DPU.
        wram_bw = config.num_dpus * 8.0 * dpu.frequency_hz
        return cls(
            name="pim",
            ops_per_s_per_unit=dpu.frequency_hz
            * dpu.effective_ipc
            * dpu.compute_scale,
            units=config.num_dpus,
            bandwidth_bytes_per_s=config.combined_mram_bandwidth,
            local_bandwidth_bytes_per_s=wram_bw,
            isa=IsaCostModel(),
        )

    @classmethod
    def for_cpu(
        cls,
        threads: int = 32,
        frequency_hz: float = 2.3e9,
        simd_width: float = 8.0,
        bandwidth_bytes_per_s: float = 80e9,
        local_bandwidth_bytes_per_s: float = 2e12,
    ) -> "HardwareProfile":
        """Xeon-class profile (paper baseline: 32 threads, AVX2, ~80 GB/s).

        Uniform ISA costs (vector units multiply as fast as they add);
        local traffic (PQ LUT gathers) hits L1/L2 at TB/s aggregate.
        """
        return cls(
            name="cpu",
            ops_per_s_per_unit=frequency_hz,
            units=threads,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            local_bandwidth_bytes_per_s=local_bandwidth_bytes_per_s,
            isa=IsaCostModel(mul_cost=1.0, div_cost=4.0),
            simd_width=simd_width,
        )


@dataclass
class PhaseEstimate:
    """Model output for one phase."""

    phase: str
    ops: InstructionMix
    issue_slots: float
    dram_bytes: float
    local_bytes: float
    seconds: float
    compute_seconds: float
    io_seconds: float

    @property
    def bytes_moved(self) -> float:
        return self.dram_bytes + self.local_bytes

    @property
    def c2io(self) -> float:
        """Eq. 12 — issue slots per byte moved."""
        return self.issue_slots / self.bytes_moved if self.bytes_moved else math.inf

    @property
    def compute_bound(self) -> bool:
        return self.compute_seconds >= self.io_seconds


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


class AnalyticPerfModel:
    """Evaluates Eqs. 1–12 for a parameter point on a hardware profile."""

    def __init__(
        self,
        shape: DatasetShape,
        profile: HardwareProfile,
        *,
        multiplier_less: bool = False,
        io_mode: str = "split",
    ) -> None:
        if io_mode not in ("split", "paper"):
            raise ValueError(f"io_mode must be 'split' or 'paper', got {io_mode!r}")
        self.shape = shape
        self.profile = profile
        self.multiplier_less = multiplier_less
        self.io_mode = io_mode

    # ----- per-phase op/byte counts (Eqs. 1-10) --------------------------
    def _counts(self, p: IndexParams) -> Dict[str, tuple]:
        """Per phase: (InstructionMix, dram_bytes, local_bytes)."""
        s = self.shape
        q = float(s.num_queries)
        d = float(s.dim)
        nlist = float(p.nlist)
        pp = float(p.nprobe)
        c = p.avg_cluster_size(s.num_points)
        m = float(p.num_subspaces)
        cb = float(p.codebook_size)
        k = float(p.k)
        logp = _log2(pp)
        logk = _log2(k)

        out: Dict[str, tuple] = {}

        # CL (Eq. 1/2): distance to every centroid + nprobe heap.
        pairs = q * nlist
        cl_mix = InstructionMix(
            add=pairs * 2 * d,  # sub + accumulate per dim
            mul=pairs * d,
            compare=pairs * (logp - 1),
        )
        # Blocked GEMM: queries read once, centroid table streamed once
        # per query block (io_mode="paper" reverts to Eq. 2's per-pair
        # charge below).
        if self.io_mode == "paper":
            cl_dram = pairs * (s.bits_centroid + s.bits_query) / 8 * d
        else:
            num_blocks = math.ceil(q / self.profile.gemm_block)
            cl_dram = (
                q * d * s.bits_query / 8
                + num_blocks * nlist * d * s.bits_centroid / 8
            )
        cl_local = pairs * (s.bits_query / 8 * 5) * (logp + 1)
        out["CL"] = (cl_mix, cl_dram, cl_local)

        # RC (Eq. 3/4): residual per (query, probe) pair.
        rc_mix = InstructionMix(add=q * pp * d)
        rc_dram = (s.bits_centroid + s.bits_query) / 8 * q * pp * d
        out["RC"] = (rc_mix, rc_dram, 0.0)

        # LC (Eq. 5/6): (sub, square, add) per dim per codebook entry.
        lc_pairs = q * pp * cb
        lc_sub_add = lc_pairs * 2 * d  # sub + accumulate
        lc_square = lc_pairs * d
        lc_dram = lc_pairs * d * 2 * s.bits_query / 8  # codebook stream
        lc_local = lc_pairs * s.bits_lut / 8 * m  # LUT writes
        if self.multiplier_less:
            # Squares become WRAM loads from the square LUT.
            lc_mix = InstructionMix(
                add=lc_sub_add, load=lc_square, store=lc_pairs * m
            )
            lc_local += lc_square * (s.bits_lut / 8)
        else:
            lc_mix = InstructionMix(
                add=lc_sub_add, mul=lc_square, store=lc_pairs * m
            )
        out["LC"] = (lc_mix, lc_dram, lc_local)

        # DC (Eq. 7/8): M gathers + (M-1) adds per candidate point.
        cand = q * pp * c
        dc_mix = InstructionMix(
            add=cand * (m - 1), load=cand * m, control=cand * m
        )
        dc_dram = cand * (m * s.bits_point / 8 + s.bits_address / 8)
        dc_local = cand * (
            m * (s.bits_address + s.bits_lut) / 8 + s.bits_lut / 8
        )
        out["DC"] = (dc_mix, dc_dram, dc_local)

        # TS (Eq. 9/10): per-candidate heap maintenance.
        ts_mix = InstructionMix(compare=cand * (logk - 1))
        ts_local = cand * (logk + 1) * (s.bits_lut + s.bits_address) / 8
        out["TS"] = (ts_mix, 0.0, ts_local)
        return out

    # ----- evaluation -----------------------------------------------------
    def phase(self, params: IndexParams, phase: str) -> PhaseEstimate:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; must be one of {PHASES}")
        mix, dram, local = self._counts(params)[phase]
        prof = self.profile
        slots = prof.isa.issue_slots(mix) / prof.simd_width
        compute_s = slots / (prof.ops_per_s_per_unit * prof.units)
        if self.io_mode == "paper":
            io_s = (dram + local) / prof.bandwidth_bytes_per_s
        else:
            io_s = dram / prof.bandwidth_bytes_per_s
            if prof.local_bandwidth_bytes_per_s is not None:
                io_s = max(io_s, local / prof.local_bandwidth_bytes_per_s)
        return PhaseEstimate(
            phase=phase,
            ops=mix,
            issue_slots=slots,
            dram_bytes=dram,
            local_bytes=local,
            seconds=max(compute_s, io_s),
            compute_seconds=compute_s,
            io_seconds=io_s,
        )

    def estimate(self, params: IndexParams) -> Dict[str, PhaseEstimate]:
        """All five phases for one parameter point."""
        params.validate_for(self.shape.dim)
        return {ph: self.phase(params, ph) for ph in PHASES}

    def total_seconds(
        self, params: IndexParams, *, phases=PHASES
    ) -> float:
        """Sum of phase times (the paper sums per-side phase times)."""
        est = self.estimate(params)
        return sum(est[ph].seconds for ph in phases)

    def split_seconds(
        self, params: IndexParams, host_phases=("CL",)
    ) -> float:
        """Eq. 13 objective: max(host side, PIM side) with overlap.

        Phases placed on the host overlap with DPU execution, so the
        batch time is the max of the two sides' sums. Host-side phase
        times are modeled on a CPU profile internally when host phases
        are requested; passing an empty tuple charges everything to
        this profile.
        """
        est = self.estimate(params)
        pim = sum(est[ph].seconds for ph in PHASES if ph not in host_phases)
        if not host_phases:
            return pim
        host_model = AnalyticPerfModel(
            self.shape, HardwareProfile.for_cpu(), multiplier_less=False
        )
        host = sum(
            host_model.phase(params, ph).seconds
            for ph in PHASES
            if ph in host_phases
        )
        return max(host, pim)

    def throughput_qps(self, params: IndexParams, **kw) -> float:
        """Queries per second implied by :meth:`split_seconds`."""
        return self.shape.num_queries / self.split_seconds(params, **kw)
