"""Design-space exploration (§III-C, Eq. 13).

Find (K, P, C, M, CB) minimizing the modeled batch time

    min max(sum_host t_x, sum_pim t_x)
    s.t. a(K, P, C, M, CB) >= accuracy_constraint

where the objective comes from the analytic performance model (cheap,
deterministic) and ``a`` is the expensive measured-accuracy oracle.
:class:`DesignSpaceExplorer` wires the pieces: a
:class:`~repro.tuning.space.DiscreteSpace` over (nlist, nprobe, M, CB),
the PIM perf model as objective, and either a pre-measured
:class:`~repro.core.accuracy.AccuracyTable` or a live measurement
callback as the oracle, optimized by constrained Bayesian optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.contracts import KernelShape
from repro.analysis.findings import Finding, Severity
from repro.analysis.resources import check_wram
from repro.core.accuracy import AccuracyTable
from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.pim.config import DpuConfig
from repro.tuning.bayesopt import ConstrainedBayesOpt
from repro.tuning.space import DiscreteSpace


@dataclass
class DseResult:
    """Outcome of a DSE run."""

    best_params: Optional[IndexParams]
    best_modeled_seconds: Optional[float]
    best_accuracy: Optional[float]
    oracle_calls: int
    observations: list

    @property
    def found_feasible(self) -> bool:
        return self.best_params is not None


class DesignSpaceExplorer:
    """Constrained-BO search over index parameters."""

    def __init__(
        self,
        shape: DatasetShape,
        pim_profile: HardwareProfile,
        *,
        nlist_values: Sequence[int],
        nprobe_values: Sequence[int],
        m_values: Sequence[int],
        cb_values: Sequence[int] = (256,),
        k: int = 10,
        multiplier_less: bool = True,
        host_phases: Sequence[str] = ("CL",),
        wram_bytes: int = 64 * 1024,
        wram_reserve: int = 8 * 1024,
        dpu: Optional[DpuConfig] = None,
    ) -> None:
        self.shape = shape
        self.k = k
        self.host_phases = tuple(host_phases)
        self.multiplier_less = multiplier_less
        self.dpu = dpu if dpu is not None else DpuConfig()
        self.model = AnalyticPerfModel(
            shape, pim_profile, multiplier_less=multiplier_less
        )
        # Prune invalid combos up front: dim divisibility and WRAM fit.
        valid_m = [m for m in m_values if shape.dim % m == 0]
        if not valid_m:
            raise ValueError(
                f"no m_values divide dim {shape.dim}: {list(m_values)}"
            )
        self._wram_limit = wram_bytes - wram_reserve
        self.space = DiscreteSpace.from_dict(
            {
                "nlist": nlist_values,
                "nprobe": nprobe_values,
                "m": valid_m,
                "cb": cb_values,
            }
        )
        # Pre-sweep static validation: evaluate the kernels' resource
        # contracts for every (M, CB) x tasklet combination so WRAM-
        # infeasible points are rejected before any objective/oracle
        # call — not discovered mid-sweep as a CapacityError.
        self.static_findings = self._prevalidate(valid_m, cb_values)
        self._static_infeasible = {
            (f.data["m"], f.data["cb"])
            for f in self.static_findings
            if f.severity == Severity.ERROR and "m" in f.data and "cb" in f.data
        }

    def _prevalidate(
        self, m_values: Sequence[int], cb_values: Sequence[int]
    ) -> "list[Finding]":
        findings = []
        for m in m_values:
            for cb in cb_values:
                shape = KernelShape(
                    g=1,
                    d=self.shape.dim,
                    m=int(m),
                    cb=int(cb),
                    dsub=self.shape.dim // int(m),
                    k=self.k,
                    code_bytes=1 if cb <= 256 else 2,
                    bits_lut=self.shape.bits_lut,
                    multiplier_less=self.multiplier_less,
                )
                findings += check_wram(shape, self.dpu)
        return findings

    # ----- plumbing -------------------------------------------------------
    def params_of(self, point: Dict[str, float]) -> IndexParams:
        return IndexParams(
            nlist=int(point["nlist"]),
            nprobe=int(point["nprobe"]),
            k=self.k,
            num_subspaces=int(point["m"]),
            codebook_size=int(point["cb"]),
        )

    def _valid(self, point: Dict[str, float]) -> bool:
        if int(point["nprobe"]) > int(point["nlist"]):
            return False
        if (int(point["m"]), int(point["cb"])) in self._static_infeasible:
            return False
        lut_bytes = int(point["m"]) * int(point["cb"]) * 4
        return lut_bytes <= self._wram_limit

    def validate_space(self) -> "list[Finding]":
        """All static findings for this explorer's (M, CB) grid.

        Same checks that drive pre-sweep pruning, exposed so callers
        (and ``repro lint``) can report *why* points were dropped
        rather than just observing ``objective() == inf``.
        """
        return list(self.static_findings)

    def objective(self, point: Dict[str, float]) -> float:
        """Eq. 13 target: overlapped host/PIM batch seconds."""
        if not self._valid(point):
            return float("inf")
        return self.model.split_seconds(
            self.params_of(point), host_phases=self.host_phases
        )

    # ----- run --------------------------------------------------------------
    def explore(
        self,
        accuracy_oracle: Callable[[IndexParams], float],
        accuracy_constraint: float,
        *,
        num_iterations: int = 24,
        greedy_budget: int = 8,
        seed=None,
    ) -> DseResult:
        """Run constrained BO with a live accuracy oracle."""

        def oracle(point: Dict[str, float]) -> float:
            if not self._valid(point):
                return 0.0
            return accuracy_oracle(self.params_of(point))

        bo = ConstrainedBayesOpt(
            space=self.space,
            objective_fn=self.objective,
            accuracy_oracle=oracle,
            accuracy_threshold=accuracy_constraint,
            greedy_budget=greedy_budget,
            seed=seed,
        )
        best = bo.run(num_iterations)
        return DseResult(
            best_params=self.params_of(best.point) if best else None,
            best_modeled_seconds=best.objective if best else None,
            best_accuracy=best.accuracy if best else None,
            oracle_calls=len(bo.observations),
            observations=bo.observations,
        )

    def explore_with_table(
        self,
        table: AccuracyTable,
        accuracy_constraint: float,
        **kwargs,
    ) -> DseResult:
        """Run DSE against a pre-measured accuracy table.

        Unmeasured points are treated as infeasible (accuracy 0), so
        pass a table covering the space (or a superset of it).
        """

        def oracle(params: IndexParams) -> float:
            return table.entries.get(AccuracyTable.key_of(params), 0.0)

        return self.explore(oracle, accuracy_constraint, **kwargs)
