"""Parameter bundles for the DRIM-ANN framework (paper Table I).

Three groups, mirroring the paper's notation table:

* :class:`DatasetShape` — N, Q, D and the bit widths ``B_x`` (fixed by
  the dataset/platform);
* :class:`IndexParams` — the DSE decision variables K, P, C, M, CB,
  expressed in the conventional ANN vocabulary (``nlist`` determines C
  = num_points / nlist; ``nprobe`` is P; ``k`` is K; ``num_subspaces``
  is M; ``codebook_size`` is CB);
* :class:`SearchParams` — runtime knobs (batch size, multiplier-less
  on/off, phase placement).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class DatasetShape:
    """Shape and bit widths of a dataset as seen by the perf model."""

    num_points: int  # corpus size (N * C in paper terms)
    dim: int  # D
    num_queries: int  # Q (per batch)
    bits_query: int = 8  # B_q
    bits_centroid: int = 8  # B_c
    bits_point: int = 8  # B_p
    bits_codebook: int = 16  # B_cb
    bits_lut: int = 32  # B_l
    bits_address: int = 32  # B_a

    def __post_init__(self) -> None:
        if self.num_points <= 0 or self.dim <= 0 or self.num_queries <= 0:
            raise ValueError("num_points, dim, num_queries must be > 0")
        for name in ("bits_query", "bits_centroid", "bits_point",
                     "bits_codebook", "bits_lut", "bits_address"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")


@dataclass(frozen=True)
class IndexParams:
    """The DSE decision variables (K, P, C, M, CB in paper notation)."""

    nlist: int  # number of clusters → C = num_points / nlist
    nprobe: int  # P
    k: int  # K
    num_subspaces: int  # M
    codebook_size: int = 256  # CB

    def __post_init__(self) -> None:
        if self.nlist <= 0:
            raise ValueError("nlist must be > 0")
        if not 1 <= self.nprobe <= self.nlist:
            raise ValueError(
                f"nprobe must be in [1, nlist={self.nlist}], got {self.nprobe}"
            )
        if self.k <= 0:
            raise ValueError("k must be > 0")
        if self.num_subspaces <= 0:
            raise ValueError("num_subspaces must be > 0")
        if self.codebook_size < 2:
            raise ValueError("codebook_size must be >= 2")

    def avg_cluster_size(self, num_points: int) -> float:
        """C in the paper: average points per cluster."""
        return num_points / self.nlist

    def validate_for(self, dim: int) -> None:
        if dim % self.num_subspaces != 0:
            raise ValueError(
                f"dim {dim} not divisible by num_subspaces {self.num_subspaces}"
            )

    def replace(self, **kw) -> "IndexParams":
        return replace(self, **kw)


#: Valid values of :attr:`SearchParams.execution`.
EXECUTION_MODES = ("batched", "chunked", "per_query")

#: Valid values of :attr:`SearchParams.plan` (the data-plane strategy
#: for a round's functional shard scans — see repro.pim.parallel).
PLAN_MODES = ("auto", "serial", "vectorized", "pool")

#: Valid values of :attr:`SearchParams.adaptive` (query-adaptive
#: probing — see repro.core.adaptive). "off" is the fixed-nprobe
#: baseline; "bound" adds exact distance-bound early termination;
#: "budget" adds per-query nprobe selection; "full" combines both.
ADAPTIVE_MODES = ("off", "bound", "budget", "full")

#: Valid values of :attr:`SearchParams.kernel_backend` (the host-side
#: kernel implementation — see repro.pim.backend, whose
#: ``KERNEL_BACKEND_MODES`` this mirrors; kept as a literal here so
#: importing the parameter bundles never pulls in the kernel package).
KERNEL_BACKEND_MODES = ("auto", "numpy", "numba")


@dataclass(frozen=True)
class SearchParams:
    """Runtime execution knobs."""

    batch_size: int = 128
    multiplier_less: bool = True  # §III-A conversion on/off
    # Which phases run on DPUs ("pim") vs the host ("host"). CL on the
    # host is the paper's default placement (it overlaps with DPU work).
    cluster_locate_on: str = "host"
    # WRAM bytes reserved for stack/staging when checking LUT fit.
    wram_reserve_bytes: int = 8 * 1024
    # Dispatch granularity: "batched" packs the whole query matrix into
    # one PIM round (the paper's bulk-transfer execution), "chunked"
    # dispatches batch_size-query rounds, "per_query" one query per
    # round (the differential-testing reference arm). Results are
    # bit-identical across modes; only timing and transfer aggregation
    # differ.
    execution: str = "batched"
    # Data-plane strategy for each round's functional shard scans:
    # "auto" lets the execution planner pick serial / vectorized / pool
    # from the round's measured size and worker warmup state; the other
    # values force one path. Bit-identical results and identical cycle
    # ledgers in every mode — only host wall-clock differs.
    plan: str = "auto"
    # Query-adaptive probing (see repro.core.adaptive): "off" probes a
    # fixed nprobe clusters per query; "bound" stops a query early when
    # its k-th distance provably beats every remaining cluster's lower
    # bound (exact — results stay bit-identical to "off"); "budget"
    # picks a per-query probe budget in [nprobe_min, nprobe] from the
    # centroid-distance gap profile (trades bounded recall for cycles);
    # "full" applies both. The cycle ledger always charges only the
    # clusters actually scanned.
    adaptive: str = "off"
    # Floor of the per-query budget under adaptive="budget"/"full";
    # None means max(1, nprobe // 4).
    nprobe_min: Optional[int] = None
    # Gap-heuristic sensitivity: cut the probe list at the first
    # centroid-distance gap exceeding adaptive_gap * (mean gap).
    adaptive_gap: float = 2.0
    # Host-side kernel implementation for the functional scans and LUT
    # builds (see repro.pim.backend): "auto" takes the compiled numba
    # build when importable and the fused NumPy backend otherwise;
    # "numpy"/"numba" request one explicitly (numba degrades to numpy
    # with a recorded fallback when unavailable). Bit-identical results
    # and identical cycle ledgers in every mode — only host wall-clock
    # differs.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be > 0")
        if self.cluster_locate_on not in ("host", "pim"):
            raise ValueError(
                f"cluster_locate_on must be 'host' or 'pim', got {self.cluster_locate_on!r}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        if self.plan not in PLAN_MODES:
            raise ValueError(
                f"plan must be one of {PLAN_MODES}, got {self.plan!r}"
            )
        if self.adaptive not in ADAPTIVE_MODES:
            raise ValueError(
                f"adaptive must be one of {ADAPTIVE_MODES}, got {self.adaptive!r}"
            )
        if self.nprobe_min is not None and self.nprobe_min <= 0:
            raise ValueError(
                f"nprobe_min must be > 0 or None, got {self.nprobe_min}"
            )
        if self.adaptive_gap <= 0:
            raise ValueError(
                f"adaptive_gap must be > 0, got {self.adaptive_gap}"
            )
        if self.kernel_backend not in KERNEL_BACKEND_MODES:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKEND_MODES}, "
                f"got {self.kernel_backend!r}"
            )

    def adc_lut_bytes(self, params: IndexParams, bits_lut: int = 32) -> int:
        """WRAM footprint of one per-task ADC LUT."""
        return params.num_subspaces * params.codebook_size * (bits_lut // 8)
