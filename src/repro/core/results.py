"""Typed result objects for the engine's public entry points.

`engine.search` historically returned ``(SearchResult,
TimingBreakdown)`` and ``simulate_serving`` a bare ``ServingReport``;
fault stats rode along inside the breakdown and the new metrics
snapshot had nowhere to live. These wrappers carry everything by name
while staying drop-in compatible with the old shapes:

* :class:`SearchOutcome` unpacks like the old two-tuple
  (``results, breakdown = engine.search(...)``);
* :class:`ServingOutcome` forwards attribute access to its
  :class:`~repro.core.serving.ServingReport`, so
  ``outcome.percentile_ms(99)`` keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.ann.ivfpq import SearchResult
from repro.core.breakdown import TimingBreakdown
from repro.obs.registry import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.adaptive import AdaptiveReport
    from repro.core.serving import ServingReport
    from repro.faults.report import FaultStats

__all__ = ["SearchOutcome", "ServingOutcome"]


@dataclass(frozen=True)
class SearchOutcome:
    """Everything one ``search()`` call produced."""

    results: SearchResult
    breakdown: TimingBreakdown
    metrics: Optional[MetricsSnapshot] = None
    # Populated when the call ran with adaptive != "off": what the
    # adaptive path actually probed (see repro.core.adaptive).
    adaptive: Optional["AdaptiveReport"] = None

    @property
    def faults(self) -> Optional["FaultStats"]:
        return self.breakdown.faults

    # Old-tuple compatibility: ``res, bd = engine.search(...)``.
    def __iter__(self) -> Iterator:
        return iter((self.results, self.breakdown))

    def __len__(self) -> int:
        return 2

    def __getitem__(self, i: int):
        return (self.results, self.breakdown)[i]


class ServingOutcome:
    """A serving run's report plus its metrics snapshot.

    Attribute access falls through to the wrapped report, keeping the
    pre-existing ``simulate_serving(...).percentile_ms(99)`` style
    working unchanged.
    """

    def __init__(
        self,
        report: "ServingReport",
        metrics: Optional[MetricsSnapshot] = None,
        results: Optional[SearchResult] = None,
    ) -> None:
        self.report = report
        self.metrics = metrics
        # Per-query ids/distances in arrival order, populated only when
        # simulate_serving(return_results=True); shed queries keep the
        # -1/inf fill. Lets tests prove coalescing never changes bits.
        self.results = results

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self.report, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServingOutcome({self.report.summary()!r})"
