"""DRIM-ANN core: the paper's contribution.

* :mod:`repro.core.square_lut` — multiplier-less conversion (§III-A);
* :mod:`repro.core.perf_model` — the five-phase analytic performance
  model, Eqs. 1–12 (§III-B);
* :mod:`repro.core.params` — index/search parameter bundles;
* :mod:`repro.core.accuracy` — the measured accuracy table a(K,P,C,M,CB);
* :mod:`repro.core.dse` — Bayesian-optimization design-space
  exploration under an accuracy constraint (§III-C);
* :mod:`repro.core.quantized` — integer index data as resident on DPUs;
* :mod:`repro.core.layout` — cluster splitting / duplication / greedy
  heat-balanced allocation (§IV-C);
* :mod:`repro.core.scheduler` — runtime predictor + inter-batch filter
  (§IV-D);
* :mod:`repro.core.engine` — the end-to-end DRIM-ANN engine (§IV-A);
* :mod:`repro.core.breakdown` — timing breakdowns (Fig. 8);
* :mod:`repro.core.persist` — the versioned on-disk index format
  (v2 ``DRIMIDX2`` binary + legacy v1 ``.npz``) behind
  ``DrimAnnEngine.save``/``load``.
"""

from repro.core.square_lut import SquareLut
from repro.core.config import EngineConfig
from repro.core.params import IndexParams, SearchParams, DatasetShape
from repro.core.results import SearchOutcome, ServingOutcome
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile, PhaseEstimate
from repro.core.quantized import QuantizedIndexData, build_quantized_index
from repro.core.layout import LayoutPlan, LayoutConfig, generate_layout, ClusterShard
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig
from repro.core.engine import DrimAnnEngine, EngineReport
from repro.core.breakdown import TimingBreakdown
from repro.core.accuracy import AccuracyTable, measure_accuracy_table
from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.core.persist import (
    IndexBundle,
    IndexFormatError,
    index_info,
    load_index,
    load_index_bundle,
    load_quantized,
    save_index,
    save_quantized,
    verify_index,
    write_v1,
)
from repro.core.serving import (
    BatchingPolicy,
    PoissonArrivals,
    ServingReport,
    simulate_serving,
)
from repro.core.opq_preprocess import OpqPreprocessor
from repro.core.autotune import BatchTuneResult, tune_batch_size
from repro.core.frontier import FrontierPoint, knee_point, pareto_frontier

__all__ = [
    "SquareLut",
    "EngineConfig",
    "SearchOutcome",
    "ServingOutcome",
    "IndexParams",
    "SearchParams",
    "DatasetShape",
    "AnalyticPerfModel",
    "HardwareProfile",
    "PhaseEstimate",
    "QuantizedIndexData",
    "build_quantized_index",
    "LayoutPlan",
    "LayoutConfig",
    "generate_layout",
    "ClusterShard",
    "RuntimeScheduler",
    "SchedulerConfig",
    "DrimAnnEngine",
    "EngineReport",
    "TimingBreakdown",
    "AccuracyTable",
    "measure_accuracy_table",
    "DesignSpaceExplorer",
    "DseResult",
    "IndexBundle",
    "IndexFormatError",
    "index_info",
    "load_index",
    "load_index_bundle",
    "load_quantized",
    "save_index",
    "save_quantized",
    "verify_index",
    "write_v1",
    "BatchingPolicy",
    "PoissonArrivals",
    "ServingReport",
    "simulate_serving",
    "OpqPreprocessor",
    "BatchTuneResult",
    "tune_batch_size",
    "FrontierPoint",
    "knee_point",
    "pareto_frontier",
]
