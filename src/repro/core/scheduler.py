"""Runtime query scheduling (§IV-D).

At batch time each located (query, cluster) pair must be mapped to
concrete DPU tasks. Because hot clusters are replicated, there is a
choice — and because DPU execution ends with the slowest DPU, the
choice matters.

Two components, as in the paper:

* **Predictor** — Eq. 15 models a task's latency on a DPU as
  ``l_LUT + x * l_calu + x * l_sortu`` (LUT build plus per-point scan
  and sort over the shard's ``x`` points). The scheduler walks the
  batch's tasks and assigns each (query, cluster) to the replica group
  whose maximum member-DPU predicted load is smallest, then adds the
  group's per-part latency to those DPUs.
* **Filter** — after assignment, DPUs predicted to run much longer
  than average have some of their tasks deferred into the next batch
  (a DPU slow in this batch is not necessarily slow in the next). The
  engine carries deferred tasks forward and merges their results when
  they eventually execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.layout import LayoutPlan


@dataclass(frozen=True)
class SchedulerConfig:
    """Runtime-scheduling knobs."""

    # Eq. 15 coefficients, in DPU cycles.
    lut_latency: float = 0.0  # l_LUT — set from index shape by the engine
    per_point_calc: float = 0.0  # l_calu
    per_point_sort: float = 0.0  # l_sortu
    # Filter: defer tasks from DPUs whose predicted load exceeds
    # (threshold x mean predicted load). None disables the filter.
    filter_threshold: Optional[float] = 1.5
    # Cap on the fraction of a batch's tasks the filter may defer
    # (avoids starving queries under extreme skew).
    max_defer_fraction: float = 0.25
    # Policy: "predictor" (paper), or "static" (always replica 0,
    # round-robin parts — the no-scheduling baseline).
    policy: str = "predictor"

    def __post_init__(self) -> None:
        if self.policy not in ("predictor", "static"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.filter_threshold is not None and self.filter_threshold <= 1.0:
            raise ValueError("filter_threshold must be > 1.0 or None")
        if not 0.0 <= self.max_defer_fraction <= 1.0:
            raise ValueError("max_defer_fraction must be in [0, 1]")


@dataclass
class ScheduleOutcome:
    """One batch's assignment."""

    assignments: Dict[int, List[Tuple[int, str]]]  # dpu -> [(query, shard)]
    deferred: List[Tuple[int, int]]  # [(query, cluster)] for next batch
    predicted_load: np.ndarray  # (num_dpus,) cycles


class RuntimeScheduler:
    """Maps (query, cluster) tasks to per-DPU (query, shard) tasks."""

    def __init__(self, plan: LayoutPlan, config: SchedulerConfig) -> None:
        self.plan = plan
        self.config = config
        # Pre-compute per-replica-group (dpu, latency) footprints.
        self._group_info: Dict[int, List[List[Tuple[int, str, float]]]] = {}
        for cid, groups in plan.replica_groups.items():
            infos = []
            for group in groups:
                info = []
                for key in group:
                    shard = plan.shards[key]
                    lat = (
                        config.lut_latency
                        + shard.num_points
                        * (config.per_point_calc + config.per_point_sort)
                    )
                    info.append((plan.placement[key], key, lat))
                infos.append(info)
            self._group_info[cid] = infos

    def task_latency(self, num_points: int) -> float:
        """Eq. 15 for one shard of ``num_points`` points."""
        c = self.config
        return c.lut_latency + num_points * (c.per_point_calc + c.per_point_sort)

    def schedule_batch(
        self, tasks: Sequence[Tuple[int, int]]
    ) -> ScheduleOutcome:
        """Assign a batch of (query_index, cluster_id) tasks.

        Tasks are processed hottest-cluster-first (largest latency
        footprint first), the classic greedy makespan heuristic.

        Precondition: task tuples are unique within a batch (the engine
        guarantees this — a query's probed clusters are distinct, and
        deferred tasks carry different query indices).
        """
        num_dpus = self.plan.num_dpus
        load = np.zeros(num_dpus)
        assignments: Dict[int, List[Tuple[int, str]]] = {
            d: [] for d in range(num_dpus)
        }
        # (task, group_latency) — sort descending by footprint.
        def group_cost(cid: int) -> float:
            return sum(l for _, _, l in self._group_info[cid][0])

        ordered = sorted(tasks, key=lambda t: -group_cost(t[1]))

        task_record: List[Tuple[int, int, List[Tuple[int, str, float]]]] = []
        for qidx, cid in ordered:
            groups = self._group_info[cid]
            if self.config.policy == "static":
                chosen = groups[0]
            else:
                # Pick the replica group minimizing the resulting max
                # member-DPU load.
                best_val = None
                chosen = groups[0]
                for info in groups:
                    val = max(load[d] + lat for d, _, lat in info)
                    if best_val is None or val < best_val:
                        best_val = val
                        chosen = info
            for d, key, lat in chosen:
                assignments[d].append((qidx, key))
                load[d] += lat
            task_record.append((qidx, cid, chosen))

        deferred: List[Tuple[int, int]] = []
        cfg = self.config
        if cfg.filter_threshold is not None and len(ordered) > 1:
            mean_load = load.mean()
            if mean_load > 0:
                hot_dpus = set(
                    np.flatnonzero(load > cfg.filter_threshold * mean_load)
                )
                if hot_dpus:
                    max_defer = int(cfg.max_defer_fraction * len(ordered))
                    # Walk tasks smallest-footprint-last (they were
                    # assigned last and removing them frees exactly the
                    # load we added); defer tasks touching hot DPUs.
                    for qidx, cid, info in reversed(task_record):
                        if len(deferred) >= max_defer:
                            break
                        touched = {d for d, _, _ in info}
                        if touched & hot_dpus:
                            still_hot = False
                            for d, key, lat in info:
                                load[d] -= lat
                                assignments[d].remove((qidx, key))
                                if load[d] > cfg.filter_threshold * mean_load:
                                    still_hot = True
                            deferred.append((qidx, cid))
                            if not still_hot:
                                hot_dpus = set(
                                    np.flatnonzero(
                                        load > cfg.filter_threshold * mean_load
                                    )
                                )
                                if not hot_dpus:
                                    break

        return ScheduleOutcome(
            assignments={d: a for d, a in assignments.items() if a},
            deferred=deferred,
            predicted_load=load,
        )
