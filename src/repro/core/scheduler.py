"""Runtime query scheduling (§IV-D), extended with fault awareness.

At batch time each located (query, cluster) pair must be mapped to
concrete DPU tasks. Because hot clusters are replicated, there is a
choice — and because DPU execution ends with the slowest DPU, the
choice matters.

Two components, as in the paper:

* **Predictor** — Eq. 15 models a task's latency on a DPU as
  ``l_LUT + x * l_calu + x * l_sortu`` (LUT build plus per-point scan
  and sort over the shard's ``x`` points). The scheduler walks the
  batch's tasks and assigns each (query, cluster) to the replica group
  whose maximum member-DPU predicted load is smallest, then adds the
  group's per-part latency to those DPUs.
* **Filter** — after assignment, DPUs predicted to run much longer
  than average have some of their tasks deferred into the next batch
  (a DPU slow in this batch is not necessarily slow in the next). The
  engine carries deferred tasks forward and merges their results when
  they eventually execute.

Fault awareness (see :mod:`repro.faults`) adds two pieces of state:

* a **blacklist** of fail-stopped DPUs (:meth:`RuntimeScheduler.mark_dead`)
  — blacklisted DPUs never appear in assignments again; replica groups
  with a dead member are skipped, and when no group survives intact the
  scheduler assembles a mixed group part-by-part from live replicas
  (parts are row-aligned across replicas, so mixing is sound);
* per-DPU **speed factors** (:meth:`RuntimeScheduler.set_speed_factors`)
  — the predictor divides Eq. 15 latency by the DPU's derated relative
  frequency, so stragglers attract proportionally less work.

A (query, cluster) task whose parts cannot all be covered by live
replicas is returned in :attr:`ScheduleOutcome.uncovered`; the engine
serves what it can and flags the query degraded instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.layout import LayoutPlan


@dataclass(frozen=True)
class SchedulerConfig:
    """Runtime-scheduling knobs."""

    # Eq. 15 coefficients, in DPU cycles.
    lut_latency: float = 0.0  # l_LUT — set from index shape by the engine
    per_point_calc: float = 0.0  # l_calu
    per_point_sort: float = 0.0  # l_sortu
    # Filter: defer tasks from DPUs whose predicted load exceeds
    # (threshold x mean predicted load). None disables the filter.
    filter_threshold: Optional[float] = 1.5
    # Cap on the fraction of a batch's tasks the filter may defer
    # (avoids starving queries under extreme skew).
    max_defer_fraction: float = 0.25
    # Policy: "predictor" (paper), or "static" (always replica 0,
    # round-robin parts — the no-scheduling baseline).
    policy: str = "predictor"

    def __post_init__(self) -> None:
        if self.policy not in ("predictor", "static"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.filter_threshold is not None and self.filter_threshold <= 1.0:
            raise ValueError("filter_threshold must be > 1.0 or None")
        if not 0.0 <= self.max_defer_fraction <= 1.0:
            raise ValueError("max_defer_fraction must be in [0, 1]")


@dataclass
class ScheduleOutcome:
    """One batch's assignment."""

    assignments: Dict[int, List[Tuple[int, str]]]  # dpu -> [(query, shard)]
    deferred: List[Tuple[int, int]]  # [(query, cluster)] for next batch
    predicted_load: np.ndarray  # (num_dpus,) predicted cycles (speed-weighted)
    # Tasks with at least one part that no live replica covers; the
    # covered parts (if any) are still assigned.
    uncovered: List[Tuple[int, int]] = field(default_factory=list)


class RuntimeScheduler:
    """Maps (query, cluster) tasks to per-DPU (query, shard) tasks."""

    def __init__(self, plan: LayoutPlan, config: SchedulerConfig) -> None:
        self.plan = plan
        self.config = config
        self._dead: Set[int] = set()
        self._speed = np.ones(plan.num_dpus)
        # Optional repro.obs.EngineObserver (set by the engine).
        self.observer = None
        # Pre-compute per-replica-group (dpu, latency) footprints.
        self._group_info: Dict[int, List[List[Tuple[int, str, float]]]] = {}
        for cid, groups in plan.replica_groups.items():
            infos = []
            for group in groups:
                info = []
                for key in group:
                    shard = plan.shards[key]
                    lat = (
                        config.lut_latency
                        + shard.num_points
                        * (config.per_point_calc + config.per_point_sort)
                    )
                    info.append((plan.placement[key], key, lat))
                infos.append(info)
            self._group_info[cid] = infos
        # Per-cluster latency footprint (group 0; replicas are
        # identical), precomputed once — schedule_batch sorts every
        # batch's tasks by it, and with batched execution a single call
        # sees the whole query matrix's tasks.
        self._group_cost: Dict[int, float] = {
            cid: sum(l for _, _, l in infos[0])
            for cid, infos in self._group_info.items()
        }

    # ----- fault state ------------------------------------------------------
    @property
    def dead_dpus(self) -> Set[int]:
        """Blacklisted (fail-stopped) DPUs."""
        return set(self._dead)

    def mark_dead(self, dpu_ids: Iterable[int]) -> None:
        """Permanently blacklist DPUs; they never get assignments again."""
        for d in dpu_ids:
            if not 0 <= d < self.plan.num_dpus:
                raise ValueError(
                    f"dpu_id {d} out of range [0, {self.plan.num_dpus})"
                )
            self._dead.add(int(d))

    @property
    def speed_factors(self) -> np.ndarray:
        """Per-DPU relative speed (1.0 = nominal clock)."""
        return self._speed.copy()

    def set_speed_factors(self, factors: np.ndarray) -> None:
        """Re-weight the predictor for derated (straggler) DPUs."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.plan.num_dpus,):
            raise ValueError(
                f"speed factors must have shape ({self.plan.num_dpus},), "
                f"got {factors.shape}"
            )
        if np.any(factors <= 0) or np.any(factors > 1):
            raise ValueError("speed factors must be in (0, 1]")
        self._speed = factors.copy()

    def adopt_fault_state(self, other: "RuntimeScheduler") -> None:
        """Copy blacklist + speed factors (drain/ablation schedulers).

        The observer rides along so drain and ablation schedulers keep
        feeding the same metrics as the scheduler they replace.
        """
        self._dead = set(other._dead)
        self._speed = other._speed.copy()
        self.observer = other.observer

    def _alive(self, dpu_id: int) -> bool:
        return dpu_id not in self._dead

    # ----- prediction -------------------------------------------------------
    def task_latency(self, num_points: int) -> float:
        """Eq. 15 for one shard of ``num_points`` points."""
        c = self.config
        return c.lut_latency + num_points * (c.per_point_calc + c.per_point_sort)

    def _cost_on(self, dpu_id: int, lat: float) -> float:
        """Predicted cycles of a part on a DPU, at that DPU's clock."""
        return lat / self._speed[dpu_id]

    # ----- scheduling -------------------------------------------------------
    def schedule_batch(
        self, tasks: Sequence[Tuple[int, int]]
    ) -> ScheduleOutcome:
        """Assign a batch of (query_index, cluster_id) tasks.

        Tasks are processed hottest-cluster-first (largest latency
        footprint first), the classic greedy makespan heuristic.

        Precondition: task tuples are unique within a batch (the engine
        guarantees this — a query's probed clusters are distinct, and
        deferred tasks carry different query indices).
        """
        num_dpus = self.plan.num_dpus
        load = np.zeros(num_dpus)
        assignments: Dict[int, List[Tuple[int, str]]] = {
            d: [] for d in range(num_dpus)
        }
        uncovered: List[Tuple[int, int]] = []
        # Sort descending by precomputed cluster footprint.
        group_cost = self._group_cost
        ordered = sorted(tasks, key=lambda t: -group_cost[t[1]])

        task_record: List[Tuple[int, int, List[Tuple[int, str, float]]]] = []
        for qidx, cid in ordered:
            groups = self._group_info[cid]
            if self._dead:
                alive_groups = [
                    g for g in groups if all(self._alive(d) for d, _, _ in g)
                ]
            else:
                alive_groups = groups
            if alive_groups:
                if self.config.policy == "static":
                    chosen = alive_groups[0]
                else:
                    # Pick the replica group minimizing the resulting
                    # max member-DPU load.
                    best_val = None
                    chosen = alive_groups[0]
                    for info in alive_groups:
                        val = max(
                            load[d] + self._cost_on(d, lat)
                            for d, _, lat in info
                        )
                        if best_val is None or val < best_val:
                            best_val = val
                            chosen = info
            else:
                # No replica group survives intact: assemble a mixed
                # group part-by-part. Parts are row-aligned across
                # replicas, so replica r's part p covers exactly the
                # same points as replica r''s part p.
                chosen, missing = self._salvage_parts(cid, load)
                if missing:
                    uncovered.append((qidx, cid))
                if not chosen:
                    continue
            for d, key, lat in chosen:
                assignments[d].append((qidx, key))
                load[d] += self._cost_on(d, lat)
            task_record.append((qidx, cid, chosen))

        deferred: List[Tuple[int, int]] = []
        cfg = self.config
        if cfg.filter_threshold is not None and len(ordered) > 1:
            mean_load = load.mean()
            if mean_load > 0:
                hot_dpus = set(
                    np.flatnonzero(load > cfg.filter_threshold * mean_load)
                )
                if hot_dpus:
                    max_defer = int(cfg.max_defer_fraction * len(ordered))
                    # Walk tasks smallest-footprint-last (they were
                    # assigned last and removing them frees exactly the
                    # load we added); defer tasks touching hot DPUs.
                    for qidx, cid, info in reversed(task_record):
                        if len(deferred) >= max_defer:
                            break
                        touched = {d for d, _, _ in info}
                        if touched & hot_dpus:
                            still_hot = False
                            for d, key, lat in info:
                                load[d] -= self._cost_on(d, lat)
                                assignments[d].remove((qidx, key))
                                if load[d] > cfg.filter_threshold * mean_load:
                                    still_hot = True
                            deferred.append((qidx, cid))
                            if not still_hot:
                                hot_dpus = set(
                                    np.flatnonzero(
                                        load > cfg.filter_threshold * mean_load
                                    )
                                )
                                if not hot_dpus:
                                    break

        outcome = ScheduleOutcome(
            assignments={d: a for d, a in assignments.items() if a},
            deferred=deferred,
            predicted_load=load,
            uncovered=uncovered,
        )
        if self.observer is not None:
            self.observer.on_schedule(
                tasks_per_dpu=[
                    (d, len(a)) for d, a in sorted(outcome.assignments.items())
                ],
                predicted_cycles=[
                    (d, float(load[d])) for d in sorted(outcome.assignments)
                ],
                deferred=len(deferred),
                uncovered=len(uncovered),
                dead_dpus=len(self._dead),
            )
        return outcome

    def _salvage_parts(
        self, cid: int, load: np.ndarray
    ) -> Tuple[List[Tuple[int, str, float]], int]:
        """Per-part live-replica selection when no group is intact.

        Returns (chosen parts, number of parts with no live replica).
        """
        groups = self._group_info[cid]
        num_parts = len(groups[0])
        chosen: List[Tuple[int, str, float]] = []
        missing = 0
        for p in range(num_parts):
            options = [g[p] for g in groups if self._alive(g[p][0])]
            if not options:
                missing += 1
                continue
            best = min(
                options,
                key=lambda o: (load[o[0]] + self._cost_on(o[0], o[2]), o[0]),
            )
            chosen.append(best)
        return chosen, missing

    # ----- failover ---------------------------------------------------------
    def failover_assignments(
        self, failed: Sequence[Tuple[int, str]]
    ) -> Tuple[Dict[int, List[Tuple[int, str]]], List[Tuple[int, int]]]:
        """Re-dispatch failed (query, shard) tasks to live replicas.

        Failover is part-exact: a failed shard re-runs as the same part
        of another replica (row-aligned), so merged top-k pools never
        double-count a point. Returns ``(assignments, uncovered)``
        where ``uncovered`` lists (query, cluster) tasks whose part has
        no surviving replica.
        """
        assignments: Dict[int, List[Tuple[int, str]]] = {}
        uncovered: List[Tuple[int, int]] = []
        load = np.zeros(self.plan.num_dpus)
        for qidx, key in failed:
            shard = self.plan.shards[key]
            groups = self._group_info[shard.cluster_id]
            options = [
                g[shard.part_id]
                for g in groups
                if self._alive(g[shard.part_id][0])
            ]
            if not options:
                uncovered.append((qidx, shard.cluster_id))
                continue
            d, new_key, lat = min(
                options,
                key=lambda o: (load[o[0]] + self._cost_on(o[0], o[2]), o[0]),
            )
            assignments.setdefault(d, []).append((qidx, new_key))
            load[d] += self._cost_on(d, lat)
        if self.observer is not None and assignments:
            self.observer.on_failover(
                sum(len(t) for t in assignments.values())
            )
        return assignments, uncovered
