"""Index persistence: the durable on-disk index formats.

Index construction (k-means + PQ training + encoding) dominates
engine-build time; deployments build once and serve many times. This
module serializes :class:`~repro.core.quantized.QuantizedIndexData`
(the integer, DPU-ready form — everything the engine needs besides
layout knobs, which are cheap to regenerate) to disk and back.

Two container formats:

* **v1** — a compressed ``.npz`` archive (the original format). Kept
  readable forever; still writable through :func:`write_v1` for
  interchange. Compression makes it impossible to memory-map, so v1
  loads always materialize every array.
* **v2** — the ``DRIMIDX2`` binary format: an 8-byte magic, a u64
  little-endian header length, a JSON header (space-padded), then the
  raw array segments at 16-byte-aligned offsets. Every segment's
  offset/shape/dtype/crc32 lives in the header, so
  :func:`load_index` can rebuild zero-copy :func:`numpy.memmap` views
  with no per-shard materialization — the engine slices cluster ranges
  straight out of the mapping and publishes them into the shared-memory
  arena, extending the zero-copy data plane to cold start. v2 also
  carries what v1 cannot: tombstone masks (deleted rows), the cluster
  heat vector (so a reload reproduces the exact DPU layout), and an
  optional OPQ preprocessor.

The one blessed API is :meth:`repro.core.engine.DrimAnnEngine.save` /
``.load`` / ``.unload``; the functions here are the format layer under
it:

    save_index(quant, "index.drim", cluster_heat=heat)
    bundle = load_index_bundle("index.drim")     # mmap-backed views
    quant = load_index("index.drim")             # just the index

``save_quantized`` / ``load_quantized`` remain as
``DeprecationWarning`` shims over the same machinery.

Cluster arrays are stored concatenated with offset tables rather than
as thousands of tiny members (per-member overhead is brutal at
nlist=2^16). Offsets and flat-array lengths are validated up front so
corrupt tables raise :class:`IndexFormatError` naming the path and
member instead of an ``IndexError`` deep inside a reshape.

Writes are **crash-safe**: the payload is staged to a temp file in the
target directory and atomically :func:`os.replace`\\ d into place, so
a crash mid-save leaves either the old index or none — never a
truncated one a serving node would then choke on.
:func:`set_crash_hook` exposes the two stage boundaries ("staged",
"replaced") to the fault-injection layer
(:mod:`repro.faults.disk`), which proves the guarantee under injected
crashes mid-compaction. Reads validate the magic/version header and
raise :class:`IndexFormatError` (with the offending path) on anything
corrupt, truncated, or foreign.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import warnings
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.opq_preprocess import OpqPreprocessor
from repro.core.quantized import QuantizedIndexData

#: Version of the legacy ``.npz`` container (format v1).
FORMAT_VERSION = 1
_MAGIC = "drimann-quantized-index"

#: Version of the ``DRIMIDX2`` binary container.
FORMAT_VERSION_V2 = 2
_MAGIC_V2 = b"DRIMIDX2"
_V2_ALIGN = 16
_V2_PREFIX = 16  # 8-byte magic + u64 header length
_V2_HEADER_QUANTUM = 1024

#: Segment names every v2 file must carry.
_V2_REQUIRED_SEGMENTS = (
    "centroids",
    "codebooks",
    "cluster_offsets",
    "ids_flat",
    "codes_flat",
    "tombstones",
)


class IndexFormatError(ValueError):
    """The file is not a readable DRIM-ANN index archive."""


@dataclass
class IndexBundle:
    """Everything a v2 index file carries, beyond the index itself.

    ``cluster_heat`` (when present) is the heat vector the layout was
    generated from — reloading with it reproduces the exact shard
    layout, which is what makes cycle ledgers bit-identical across a
    save/load round trip. ``preprocessor`` restores the OPQ transform
    for engines built with ``use_opq``.
    """

    index: QuantizedIndexData
    cluster_heat: Optional[np.ndarray] = None
    preprocessor: Optional[OpqPreprocessor] = None
    version: int = FORMAT_VERSION_V2
    path: str = ""
    header: dict = field(default_factory=dict)
    # Per-cluster squared reconstruction radii (optional v2 segment;
    # None for files written before adaptive probing — the engine then
    # disables bound-based early termination instead of failing).
    cluster_radii: Optional[np.ndarray] = None


# ---------------------------------------------------------------------------
# Crash-injection seam (repro.faults.disk)
# ---------------------------------------------------------------------------

_crash_hook: Optional[Callable[[str], None]] = None


def set_crash_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or clear, with ``None``) the atomic-write stage hook.

    The hook fires with ``"staged"`` after the temp file is written and
    fsynced but *before* the atomic rename, and with ``"replaced"``
    after the rename. Raising from the ``"staged"`` stage simulates a
    crash mid-save: the temp file is cleaned up and the previous index
    stays untouched. See :class:`repro.faults.disk.CrashPoint`.
    """
    global _crash_hook
    _crash_hook = hook


def _fire_crash_hook(stage: str) -> None:
    if _crash_hook is not None:
        _crash_hook(stage)


def _atomic_write(path: str, write: Callable[..., None]) -> None:
    """Stage ``write(f)`` to a temp file, fsync, and rename into place.

    The temp file lives in ``path``'s directory (same filesystem, so
    the final rename is atomic); a failure at any point before the
    rename unlinks the temp file and leaves ``path`` untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            write(f)
            f.flush()
            os.fsync(f.fileno())
        _fire_crash_hook("staged")
        os.replace(tmp_path, path)
    except BaseException:
        # Failed mid-stage: drop the temp file, leave `path` untouched.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fire_crash_hook("replaced")


# ---------------------------------------------------------------------------
# Shared flat-layout helpers
# ---------------------------------------------------------------------------

def _flatten_index(
    index: QuantizedIndexData,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-cluster arrays: (offsets, ids, codes, tombstones)."""
    sizes = index.cluster_sizes()
    offsets = np.zeros(index.nlist + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if index.num_points:
        ids_flat = np.concatenate(index.cluster_ids)
        codes_flat = np.concatenate(index.cluster_codes)
    else:
        ids_flat = np.empty(0, dtype=np.int64)
        codes_flat = np.empty(
            (0, index.num_subspaces),
            dtype=index.cluster_codes[0].dtype if index.nlist else np.uint8,
        )
    masks = index.tombstone_masks()
    if masks is None:
        tomb_flat = np.zeros(int(offsets[-1]), dtype=np.uint8)
    else:
        tomb_flat = (
            np.concatenate(masks).astype(np.uint8)
            if index.num_points
            else np.empty(0, dtype=np.uint8)
        )
    return offsets, ids_flat, codes_flat, tomb_flat


def _validate_flat_layout(
    path: str,
    offsets: np.ndarray,
    ids_flat: np.ndarray,
    codes_flat: np.ndarray,
    *,
    nlist: Optional[int] = None,
) -> None:
    """Reject inconsistent offset tables with a precise error.

    Guards both loaders against archives whose offset table does not
    cover the flat arrays (previously a bare ``IndexError`` deep in the
    per-cluster slicing).
    """
    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or len(offsets) < 1:
        raise IndexFormatError(
            f"{path!r} member 'offsets' must be a non-empty 1-D table, "
            f"got shape {offsets.shape}"
        )
    if nlist is not None and len(offsets) != nlist + 1:
        raise IndexFormatError(
            f"{path!r} member 'offsets' has {len(offsets)} entries; "
            f"expected nlist+1 = {nlist + 1}"
        )
    if int(offsets[0]) != 0:
        raise IndexFormatError(
            f"{path!r} member 'offsets' must start at 0, got {int(offsets[0])}"
        )
    if len(offsets) > 1 and np.any(np.diff(offsets) < 0):
        raise IndexFormatError(
            f"{path!r} member 'offsets' is not monotonically non-decreasing"
        )
    total = int(offsets[-1])
    if len(ids_flat) != total:
        raise IndexFormatError(
            f"{path!r} member 'ids_flat' has {len(ids_flat)} rows but the "
            f"offset table covers {total}"
        )
    codes_flat = np.asarray(codes_flat)
    if codes_flat.ndim != 2:
        raise IndexFormatError(
            f"{path!r} member 'codes_flat' must be 2-D, "
            f"got shape {codes_flat.shape}"
        )
    if len(codes_flat) != total:
        raise IndexFormatError(
            f"{path!r} member 'codes_flat' has {len(codes_flat)} rows but "
            f"the offset table covers {total}"
        )


# ---------------------------------------------------------------------------
# v1: the legacy .npz container
# ---------------------------------------------------------------------------

def write_v1(index: QuantizedIndexData, path: str) -> None:
    """Write the legacy v1 ``.npz`` archive (atomic, like every writer).

    v1 has no tombstone representation, so indexes carrying deletions
    must be :meth:`~repro.core.quantized.QuantizedIndexData.compact`\\ ed
    (or saved as v2) first.
    """
    if index.has_tombstones:
        raise ValueError(
            "format v1 (.npz) cannot represent tombstones; compact() the "
            "index first or save it in the v2 format"
        )
    offsets, ids_flat, codes_flat, _ = _flatten_index(index)

    def _write(f) -> None:
        np.savez_compressed(
            f,
            magic=np.array(_MAGIC),
            version=np.array(FORMAT_VERSION),
            centroids=index.centroids,
            codebooks=index.codebooks,
            offsets=offsets,
            ids_flat=ids_flat,
            codes_flat=codes_flat,
        )

    _atomic_write(path, _write)


def _load_v1(path: str) -> QuantizedIndexData:
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as e:
        raise IndexFormatError(
            f"{path!r} is not a DRIM-ANN index file (unreadable archive: {e})"
        ) from e
    with archive as z:
        try:
            magic = str(z["magic"])
            version = int(z["version"])
        except KeyError as e:
            raise IndexFormatError(
                f"{path!r} is not a DRIM-ANN index file (no header)"
            ) from e
        if magic != _MAGIC:
            raise IndexFormatError(
                f"{path!r} is not a DRIM-ANN index file "
                f"(bad magic {magic!r})"
            )
        if version > FORMAT_VERSION:
            raise IndexFormatError(
                f"{path!r} has format version {version}; this build reads "
                f"<= {FORMAT_VERSION}"
            )
        try:
            centroids = z["centroids"]
            codebooks = z["codebooks"]
            offsets = z["offsets"]
            ids_flat = z["ids_flat"]
            codes_flat = z["codes_flat"]
        except (KeyError, zipfile.BadZipFile, ValueError, OSError) as e:
            raise IndexFormatError(
                f"{path!r} is truncated or corrupt "
                f"(missing or unreadable member: {e})"
            ) from e
    _validate_flat_layout(
        path, offsets, ids_flat, codes_flat, nlist=len(centroids)
    )
    nlist = len(offsets) - 1
    cluster_ids = [
        ids_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    cluster_codes = [
        codes_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    try:
        return QuantizedIndexData(
            centroids=centroids,
            codebooks=codebooks,
            cluster_ids=cluster_ids,
            cluster_codes=cluster_codes,
        )
    except (TypeError, ValueError) as e:
        raise IndexFormatError(
            f"{path!r} holds inconsistent index arrays: {e}"
        ) from e


# ---------------------------------------------------------------------------
# v2: the DRIMIDX2 binary container
# ---------------------------------------------------------------------------

def _v2_segments(
    index: QuantizedIndexData,
    cluster_heat: Optional[np.ndarray],
    preprocessor: Optional[OpqPreprocessor],
    cluster_radii: Optional[np.ndarray] = None,
) -> List[Tuple[str, np.ndarray]]:
    offsets, ids_flat, codes_flat, tomb_flat = _flatten_index(index)
    segments: List[Tuple[str, np.ndarray]] = [
        ("centroids", np.ascontiguousarray(index.centroids)),
        ("codebooks", np.ascontiguousarray(index.codebooks)),
        ("cluster_offsets", offsets),
        ("ids_flat", np.ascontiguousarray(ids_flat)),
        ("codes_flat", np.ascontiguousarray(codes_flat)),
        ("tombstones", tomb_flat),
    ]
    if cluster_heat is not None:
        heat = np.ascontiguousarray(cluster_heat, dtype=np.float64)
        if heat.shape != (index.nlist,):
            raise ValueError(
                f"cluster_heat must have shape ({index.nlist},), "
                f"got {heat.shape}"
            )
        segments.append(("cluster_heat", heat))
    if preprocessor is not None:
        segments.append(
            (
                "opq_rotation",
                np.ascontiguousarray(preprocessor.rotation, dtype=np.float64),
            )
        )
    if cluster_radii is not None:
        radii = np.ascontiguousarray(cluster_radii, dtype=np.int64)
        if radii.shape != (index.nlist,):
            raise ValueError(
                f"cluster_radii must have shape ({index.nlist},), "
                f"got {radii.shape}"
            )
        segments.append(("cluster_radii", radii))
    return segments


def save_index(
    index: QuantizedIndexData,
    path: str,
    *,
    cluster_heat: Optional[np.ndarray] = None,
    preprocessor: Optional[OpqPreprocessor] = None,
    cluster_radii: Optional[np.ndarray] = None,
) -> None:
    """Write the v2 ``DRIMIDX2`` binary index file, atomically.

    The file is memory-mappable: :func:`load_index` rebuilds every
    cluster's ids/codes as zero-copy views into one mapping. Optional
    payloads: the layout ``cluster_heat`` vector (reloads reproduce the
    exact DPU layout), an OPQ ``preprocessor``, and the per-cluster
    ``cluster_radii`` vector adaptive bound-termination needs (files
    without it still load; adaptive bounds just disable).
    """
    segments = _v2_segments(index, cluster_heat, preprocessor, cluster_radii)
    header: dict = {
        "magic": _MAGIC_V2.decode("ascii"),
        "version": FORMAT_VERSION_V2,
        "nlist": index.nlist,
        "dim": index.dim,
        "num_subspaces": index.num_subspaces,
        "codebook_size": index.codebook_size,
        "num_points": index.num_points,
        "num_tombstones": index.num_tombstones,
        "opq": None
        if preprocessor is None
        else {
            "scale": float(preprocessor.scale),
            "offset": float(preprocessor.offset),
        },
        "segments": {},
    }
    # Fixed-point iteration on the header capacity: segment offsets are
    # absolute, so they depend on the header size, which depends on the
    # (JSON-encoded) offsets. Capacity grows in 1 KiB quanta; trailing
    # space padding is invisible to json.loads.
    capacity = _V2_HEADER_QUANTUM
    while True:
        pos = _V2_PREFIX + capacity
        for name, arr in segments:
            pos += (-pos) % _V2_ALIGN
            header["segments"][name] = {
                "offset": pos,
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
                "crc32": zlib.crc32(arr.tobytes()) & 0xFFFFFFFF,
            }
            pos += arr.nbytes
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(blob) <= capacity:
            break
        capacity += (
            -(-(len(blob) - capacity) // _V2_HEADER_QUANTUM)
            * _V2_HEADER_QUANTUM
        )
    blob = blob + b" " * (capacity - len(blob))

    def _write(f) -> None:
        f.write(_MAGIC_V2)
        f.write(struct.pack("<Q", capacity))
        f.write(blob)
        pos = _V2_PREFIX + capacity
        for name, arr in segments:
            target = header["segments"][name]["offset"]
            if target > pos:
                f.write(b"\x00" * (target - pos))
            f.write(arr.tobytes())
            pos = target + arr.nbytes

    _atomic_write(path, _write)


def _read_v2_header(path: str) -> Tuple[dict, int]:
    """Parse the v2 prefix + JSON header; returns (header, data_start)."""
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        prefix = f.read(_V2_PREFIX)
        if len(prefix) < _V2_PREFIX or prefix[:8] != _MAGIC_V2:
            raise IndexFormatError(
                f"{path!r} is not a DRIM-ANN v2 index (bad magic)"
            )
        (capacity,) = struct.unpack("<Q", prefix[8:])
        if capacity <= 0 or _V2_PREFIX + capacity > size:
            raise IndexFormatError(
                f"{path!r} is truncated or corrupt (header length "
                f"{capacity} exceeds file size {size})"
            )
        blob = f.read(capacity)
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise IndexFormatError(
            f"{path!r} has an unreadable header: {e}"
        ) from e
    if not isinstance(header, dict) or not isinstance(
        header.get("segments"), dict
    ):
        raise IndexFormatError(f"{path!r} has a malformed header")
    if header.get("magic") != _MAGIC_V2.decode("ascii"):
        raise IndexFormatError(
            f"{path!r} is not a DRIM-ANN v2 index "
            f"(bad header magic {header.get('magic')!r})"
        )
    version = header.get("version")
    if not isinstance(version, int) or version < 2:
        raise IndexFormatError(
            f"{path!r} has a malformed format version {version!r}"
        )
    if version > FORMAT_VERSION_V2:
        raise IndexFormatError(
            f"{path!r} has format version {version}; this build reads "
            f"<= {FORMAT_VERSION_V2}"
        )
    return header, _V2_PREFIX + capacity


def _v2_segment_view(
    path: str, buf: np.ndarray, header: dict, name: str, required: bool = True
) -> Optional[np.ndarray]:
    meta = header["segments"].get(name)
    if meta is None:
        if required:
            raise IndexFormatError(
                f"{path!r} is missing required member {name!r}"
            )
        return None
    try:
        offset = int(meta["offset"])
        shape = tuple(int(s) for s in meta["shape"])
        dtype = np.dtype(str(meta["dtype"]))
    except (KeyError, TypeError, ValueError) as e:
        raise IndexFormatError(
            f"{path!r} member {name!r} has a malformed descriptor: {e}"
        ) from e
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if offset < 0 or nbytes < 0 or offset + nbytes > buf.nbytes:
        raise IndexFormatError(
            f"{path!r} member {name!r} extends past the end of the file "
            f"(offset {offset}, {nbytes} bytes, file {buf.nbytes} bytes)"
        )
    if nbytes == 0:
        return np.empty(shape, dtype=dtype)
    return buf[offset : offset + nbytes].view(dtype).reshape(shape)


def _load_v2_bundle(path: str, mmap: bool) -> IndexBundle:
    header, _ = _read_v2_header(path)
    if mmap:
        buf: np.ndarray = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        buf = np.fromfile(path, dtype=np.uint8)

    def seg(name: str, required: bool = True) -> Optional[np.ndarray]:
        return _v2_segment_view(path, buf, header, name, required)

    centroids = seg("centroids")
    codebooks = seg("codebooks")
    offsets = seg("cluster_offsets")
    ids_flat = seg("ids_flat")
    codes_flat = seg("codes_flat")
    tomb_flat = seg("tombstones")
    heat = seg("cluster_heat", required=False)
    rotation = seg("opq_rotation", required=False)
    radii = seg("cluster_radii", required=False)
    _validate_flat_layout(
        path, offsets, ids_flat, codes_flat, nlist=len(centroids)
    )
    if tomb_flat.ndim != 1 or len(tomb_flat) != len(ids_flat):
        raise IndexFormatError(
            f"{path!r} member 'tombstones' has {len(tomb_flat)} rows; "
            f"expected {len(ids_flat)}"
        )
    nlist = len(offsets) - 1
    # Basic slices: zero-copy views into the mapping — the engine can
    # place these straight into shards and the shared-memory arena.
    cluster_ids = [
        ids_flat[offsets[i] : offsets[i + 1]] for i in range(nlist)
    ]
    cluster_codes = [
        codes_flat[offsets[i] : offsets[i + 1]] for i in range(nlist)
    ]
    tombstones: Optional[List[np.ndarray]] = None
    if bool(tomb_flat.any()):
        # Tombstone masks stay small and must be writable (delete()
        # mutates them), so they are materialized even under mmap.
        tombstones = [
            np.array(tomb_flat[offsets[i] : offsets[i + 1]], dtype=bool)
            for i in range(nlist)
        ]
    try:
        index = QuantizedIndexData(
            centroids=centroids,
            codebooks=codebooks,
            cluster_ids=cluster_ids,
            cluster_codes=cluster_codes,
            tombstones=tombstones,
        )
    except (TypeError, ValueError) as e:
        raise IndexFormatError(
            f"{path!r} holds inconsistent index arrays: {e}"
        ) from e
    preprocessor = None
    if rotation is not None:
        opq_meta = header.get("opq") or {}
        try:
            preprocessor = OpqPreprocessor(
                rotation=np.array(rotation, dtype=np.float64),
                scale=float(opq_meta["scale"]),
                offset=float(opq_meta["offset"]),
            )
        except (KeyError, TypeError, ValueError) as e:
            raise IndexFormatError(
                f"{path!r} member 'opq_rotation' has malformed OPQ "
                f"metadata: {e}"
            ) from e
    return IndexBundle(
        index=index,
        cluster_heat=None if heat is None else np.array(heat, dtype=np.float64),
        preprocessor=preprocessor,
        version=int(header["version"]),
        path=path,
        header=header,
        cluster_radii=(
            None if radii is None else np.array(radii, dtype=np.int64)
        ),
    )


# ---------------------------------------------------------------------------
# Format-dispatching entry points
# ---------------------------------------------------------------------------

def _sniff_v2(path: str) -> bool:
    with open(path, "rb") as f:
        return f.read(8) == _MAGIC_V2


def load_index_bundle(path: str, *, mmap: bool = True) -> IndexBundle:
    """Load any index file (v1 ``.npz`` or v2 binary) with its payloads.

    v2 files load as zero-copy :func:`numpy.memmap` views by default
    (``mmap=False`` materializes them); v1 archives are compressed and
    always materialize. Raises :class:`IndexFormatError` on truncated,
    corrupt, or foreign files, and on versions newer than this build
    reads.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    if _sniff_v2(path):
        return _load_v2_bundle(path, mmap)
    return IndexBundle(
        index=_load_v1(path), version=FORMAT_VERSION, path=path
    )


def load_index(path: str, *, mmap: bool = True) -> QuantizedIndexData:
    """Load the quantized index from any format (see
    :func:`load_index_bundle`)."""
    return load_index_bundle(path, mmap=mmap).index


def index_info(path: str) -> dict:
    """Describe an index file without materializing its arrays.

    For v2 this reads only the header; for v1 the archive members are
    decompressed (the container has no standalone header).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    file_bytes = os.path.getsize(path)
    if _sniff_v2(path):
        header, _ = _read_v2_header(path)
        num_points = int(header.get("num_points", 0))
        num_tombstones = int(header.get("num_tombstones", 0))
        return {
            "path": path,
            "container": "drimidx2",
            "format_version": int(header["version"]),
            "file_bytes": file_bytes,
            "nlist": int(header.get("nlist", 0)),
            "dim": int(header.get("dim", 0)),
            "num_subspaces": int(header.get("num_subspaces", 0)),
            "codebook_size": int(header.get("codebook_size", 0)),
            "num_points": num_points,
            "num_tombstones": num_tombstones,
            "tombstone_ratio": (
                num_tombstones / num_points if num_points else 0.0
            ),
            "has_cluster_heat": "cluster_heat" in header["segments"],
            "has_opq": "opq_rotation" in header["segments"],
            "has_cluster_radii": "cluster_radii" in header["segments"],
            "optional_segments": {
                "cluster_heat": "cluster_heat" in header["segments"],
                "opq_rotation": "opq_rotation" in header["segments"],
                "cluster_radii": "cluster_radii" in header["segments"],
            },
            "segments": {
                name: {
                    "offset": int(meta["offset"]),
                    "shape": list(meta["shape"]),
                    "dtype": str(meta["dtype"]),
                    "nbytes": int(
                        np.prod(meta["shape"], dtype=np.int64)
                        * np.dtype(str(meta["dtype"])).itemsize
                    ),
                    "crc32": int(meta["crc32"]),
                }
                for name, meta in sorted(header["segments"].items())
            },
        }
    index = _load_v1(path)
    return {
        "path": path,
        "container": "npz",
        "format_version": FORMAT_VERSION,
        "file_bytes": file_bytes,
        "nlist": index.nlist,
        "dim": index.dim,
        "num_subspaces": index.num_subspaces,
        "codebook_size": index.codebook_size,
        "num_points": index.num_points,
        "num_tombstones": 0,
        "tombstone_ratio": 0.0,
        "has_cluster_heat": False,
        "has_opq": False,
        "has_cluster_radii": False,
        "optional_segments": {
            "cluster_heat": False,
            "opq_rotation": False,
            "cluster_radii": False,
        },
        "segments": {},
    }


def verify_index(path: str) -> dict:
    """Deep-check an index file; returns ``{"ok", "errors", ...}``.

    v2 files get a per-segment CRC32 sweep against the header (the
    normal load path skips it — it would defeat lazy mmap paging); v1
    archives get a full decode (zip CRCs are checked inline).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    errors: List[str] = []
    checked = 0
    if _sniff_v2(path):
        container = "drimidx2"
        try:
            header, _ = _read_v2_header(path)
            buf = np.memmap(path, dtype=np.uint8, mode="r")
            for name in sorted(header["segments"]):
                arr = _v2_segment_view(path, buf, header, name)
                checked += 1
                want = int(header["segments"][name].get("crc32", -1))
                got = zlib.crc32(np.ascontiguousarray(arr).tobytes())
                got &= 0xFFFFFFFF
                if got != want:
                    errors.append(
                        f"member {name!r}: crc32 mismatch "
                        f"(stored {want}, computed {got})"
                    )
            for name in _V2_REQUIRED_SEGMENTS:
                if name not in header["segments"]:
                    errors.append(f"missing required member {name!r}")
            if not errors:
                _load_v2_bundle(path, mmap=True)
        except (IndexFormatError, OSError) as e:
            errors.append(str(e))
    else:
        container = "npz"
        try:
            index = _load_v1(path)
            checked = 5 + index.nlist * 0  # header + the five members
        except (IndexFormatError, FileNotFoundError) as e:
            errors.append(str(e))
    return {
        "path": path,
        "container": container,
        "ok": not errors,
        "checked_segments": checked,
        "errors": errors,
    }


# ---------------------------------------------------------------------------
# Deprecated shims (the pre-lifecycle API)
# ---------------------------------------------------------------------------

def save_quantized(index: QuantizedIndexData, path: str) -> None:
    """Deprecated: use :meth:`DrimAnnEngine.save` or :func:`save_index`.

    Writes the legacy v1 ``.npz`` container, exactly as before.
    """
    warnings.warn(
        "save_quantized() is deprecated; use DrimAnnEngine.save(path) or "
        "repro.core.persist.save_index(index, path)",
        DeprecationWarning,
        stacklevel=2,
    )
    write_v1(index, path)


def load_quantized(path: str) -> QuantizedIndexData:
    """Deprecated: use :meth:`DrimAnnEngine.load` or :func:`load_index`.

    Reads either container format, materialized (no mmap), exactly as
    before.
    """
    warnings.warn(
        "load_quantized() is deprecated; use DrimAnnEngine.load(path) or "
        "repro.core.persist.load_index(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    return load_index(path, mmap=False)
