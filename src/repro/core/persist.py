"""Index persistence: save/load the quantized index as a single .npz.

Index construction (k-means + PQ training + encoding) dominates
engine-build time; deployments build once and serve many times. This
module serializes :class:`~repro.core.quantized.QuantizedIndexData`
(the integer, DPU-ready form — everything the engine needs besides
layout knobs, which are cheap to regenerate) into one compressed
NumPy archive with a format-version header.

    save_quantized(quant, "index.npz")
    quant = load_quantized("index.npz")
    engine = DrimAnnEngine.build(base, params, prebuilt_quantized=quant)

Cluster arrays are stored concatenated with offset tables rather than
as thousands of tiny npz members (npz per-member overhead is brutal at
nlist=2^16).

Writes are **crash-safe**: the archive is staged to a temp file in the
target directory and atomically :func:`os.replace`\\ d into place, so
a crash mid-save leaves either the old index or none — never a
truncated one a serving node would then choke on. Reads validate the
magic/version header and raise :class:`IndexFormatError` (with the
offending path) on anything corrupt, truncated, or foreign.
"""

from __future__ import annotations

import os
import tempfile
import zipfile

import numpy as np

from repro.core.quantized import QuantizedIndexData

FORMAT_VERSION = 1
_MAGIC = "drimann-quantized-index"


class IndexFormatError(ValueError):
    """The file is not a readable DRIM-ANN index archive."""


def save_quantized(index: QuantizedIndexData, path: str) -> None:
    """Write the index to ``path`` (.npz, compressed), atomically.

    The payload is staged as a temp file in ``path``'s directory (same
    filesystem, so the final rename is atomic) and moved into place
    with :func:`os.replace` only after the write completed. Readers
    therefore never observe a partially written archive.
    """
    sizes = index.cluster_sizes()
    offsets = np.zeros(index.nlist + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    ids_flat = (
        np.concatenate(index.cluster_ids)
        if index.num_points
        else np.empty(0, dtype=np.int64)
    )
    codes_flat = (
        np.concatenate(index.cluster_codes)
        if index.num_points
        else np.empty((0, index.num_subspaces), dtype=np.uint8)
    )
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez_compressed(
                f,
                magic=np.array(_MAGIC),
                version=np.array(FORMAT_VERSION),
                centroids=index.centroids,
                codebooks=index.codebooks,
                offsets=offsets,
                ids_flat=ids_flat,
                codes_flat=codes_flat,
            )
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Failed mid-stage: drop the temp file, leave `path` untouched.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_quantized(path: str) -> QuantizedIndexData:
    """Read an index written by :func:`save_quantized`.

    Raises :class:`IndexFormatError` on truncated, corrupt, or foreign
    files (instead of leaking ``KeyError`` / ``BadZipFile`` from the
    archive internals), and on versions newer than this build reads.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as e:
        raise IndexFormatError(
            f"{path!r} is not a DRIM-ANN index file (unreadable archive: {e})"
        ) from e
    with archive as z:
        try:
            magic = str(z["magic"])
            version = int(z["version"])
        except KeyError as e:
            raise IndexFormatError(
                f"{path!r} is not a DRIM-ANN index file (no header)"
            ) from e
        if magic != _MAGIC:
            raise IndexFormatError(
                f"{path!r} is not a DRIM-ANN index file "
                f"(bad magic {magic!r})"
            )
        if version > FORMAT_VERSION:
            raise IndexFormatError(
                f"{path!r} has format version {version}; this build reads "
                f"<= {FORMAT_VERSION}"
            )
        try:
            centroids = z["centroids"]
            codebooks = z["codebooks"]
            offsets = z["offsets"]
            ids_flat = z["ids_flat"]
            codes_flat = z["codes_flat"]
        except (KeyError, zipfile.BadZipFile, ValueError, OSError) as e:
            raise IndexFormatError(
                f"{path!r} is truncated or corrupt "
                f"(missing or unreadable member: {e})"
            ) from e
    nlist = len(offsets) - 1
    cluster_ids = [
        ids_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    cluster_codes = [
        codes_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    try:
        return QuantizedIndexData(
            centroids=centroids,
            codebooks=codebooks,
            cluster_ids=cluster_ids,
            cluster_codes=cluster_codes,
        )
    except (TypeError, ValueError) as e:
        raise IndexFormatError(
            f"{path!r} holds inconsistent index arrays: {e}"
        ) from e
