"""Index persistence: save/load the quantized index as a single .npz.

Index construction (k-means + PQ training + encoding) dominates
engine-build time; deployments build once and serve many times. This
module serializes :class:`~repro.core.quantized.QuantizedIndexData`
(the integer, DPU-ready form — everything the engine needs besides
layout knobs, which are cheap to regenerate) into one compressed
NumPy archive with a format-version header.

    save_quantized(quant, "index.npz")
    quant = load_quantized("index.npz")
    engine = DrimAnnEngine.build(base, params, prebuilt_quantized=quant)

Cluster arrays are stored concatenated with offset tables rather than
as thousands of tiny npz members (npz per-member overhead is brutal at
nlist=2^16).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.quantized import QuantizedIndexData

FORMAT_VERSION = 1
_MAGIC = "drimann-quantized-index"


def save_quantized(index: QuantizedIndexData, path: str) -> None:
    """Write the index to ``path`` (.npz, compressed)."""
    sizes = index.cluster_sizes()
    offsets = np.zeros(index.nlist + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    ids_flat = (
        np.concatenate(index.cluster_ids)
        if index.num_points
        else np.empty(0, dtype=np.int64)
    )
    codes_flat = (
        np.concatenate(index.cluster_codes)
        if index.num_points
        else np.empty((0, index.num_subspaces), dtype=np.uint8)
    )
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        version=np.array(FORMAT_VERSION),
        centroids=index.centroids,
        codebooks=index.codebooks,
        offsets=offsets,
        ids_flat=ids_flat,
        codes_flat=codes_flat,
    )


def load_quantized(path: str) -> QuantizedIndexData:
    """Read an index written by :func:`save_quantized`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as z:
        try:
            magic = str(z["magic"])
            version = int(z["version"])
        except KeyError as e:
            raise ValueError(f"{path!r} is not a DRIM-ANN index file") from e
        if magic != _MAGIC:
            raise ValueError(f"{path!r} is not a DRIM-ANN index file")
        if version > FORMAT_VERSION:
            raise ValueError(
                f"{path!r} has format version {version}; this build reads "
                f"<= {FORMAT_VERSION}"
            )
        centroids = z["centroids"]
        codebooks = z["codebooks"]
        offsets = z["offsets"]
        ids_flat = z["ids_flat"]
        codes_flat = z["codes_flat"]
    nlist = len(offsets) - 1
    cluster_ids = [
        ids_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    cluster_codes = [
        codes_flat[offsets[i] : offsets[i + 1]].copy() for i in range(nlist)
    ]
    return QuantizedIndexData(
        centroids=centroids,
        codebooks=codebooks,
        cluster_ids=cluster_ids,
        cluster_codes=cluster_codes,
    )
