"""OPQ preprocessing for the integer PIM pipeline.

The engine "supports IVF-PQ and its variants, including OPQ" (paper
§I). OPQ learns an orthogonal rotation that balances variance across PQ
sub-spaces — but the DPUs consume uint8 vectors, and a rotated uint8
corpus is no longer uint8. The deployable form is therefore a
*preprocessing* transform applied on the host at index-build time and
to every query at search time:

    x' = clip(round(scale * (R @ x) + offset), 0, 255)

with ``R`` the learned OPQ rotation and (scale, offset) an affine fit
that maps the rotated corpus back into the uint8 range with minimal
clipping (0.1%/99.9% percentile fit). The rotation is orthogonal, so L2
geometry is preserved exactly up to the affine scale — neighbor ranks
are unchanged by R and only perturbed by the requantization rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.opq import OPQ
from repro.utils import check_2d, ensure_rng


@dataclass
class OpqPreprocessor:
    """A learned rotation + uint8 requantization transform."""

    rotation: np.ndarray  # (d, d) orthogonal
    scale: float
    offset: float

    def __post_init__(self) -> None:
        r = np.asarray(self.rotation, dtype=np.float64)
        if r.ndim != 2 or r.shape[0] != r.shape[1]:
            raise ValueError(f"rotation must be square, got {r.shape}")
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        self.rotation = r

    @property
    def dim(self) -> int:
        return self.rotation.shape[0]

    @classmethod
    def train(
        cls,
        base: np.ndarray,
        num_subspaces: int,
        codebook_size: int = 64,
        *,
        sample_size: int = 16384,
        num_rounds: int = 4,
        seed=None,
    ) -> "OpqPreprocessor":
        """Learn the rotation on a corpus sample and fit the affine map.

        The OPQ training codebook size only shapes the rotation (the
        engine retrains its own PQ on the transformed corpus), so a
        small codebook keeps this cheap.
        """
        base = check_2d(base, "base")
        rng = ensure_rng(seed)
        n = base.shape[0]
        idx = rng.choice(n, size=min(sample_size, n), replace=False)
        sample = base[idx].astype(np.float64)
        opq = OPQ.train(
            sample,
            num_subspaces,
            codebook_size,
            num_rounds=num_rounds,
            sample_size=None,
            seed=rng,
        )
        rotated = sample @ opq.rotation.T
        lo, hi = np.percentile(rotated, [0.1, 99.9])
        if hi <= lo:
            raise ValueError("degenerate corpus: rotated range is empty")
        scale = 255.0 / (hi - lo)
        offset = -lo * scale
        return cls(rotation=opq.rotation, scale=float(scale), offset=float(offset))

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Rotate + requantize to uint8."""
        x = check_2d(x, "x")
        if x.shape[1] != self.dim:
            raise ValueError(f"x dim {x.shape[1]} != rotation dim {self.dim}")
        rot = x.astype(np.float64) @ self.rotation.T
        return np.clip(
            np.rint(self.scale * rot + self.offset), 0, 255
        ).astype(np.uint8)
