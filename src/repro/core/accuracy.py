"""Measured accuracy table a(K, P, C, M, CB) (§III-C).

The paper's DSE consults a recall table "fetched from a table [23]" —
i.e. measured offline per dataset. :func:`measure_accuracy_table`
builds that table here: for every (nlist, M, CB) it trains one index
and evaluates recall@k across the nprobe values (amortizing the
expensive training over the cheap probe sweep), using the *quantized*
pipeline so the numbers reflect what DPUs actually compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.ann.ivfpq import IVFPQIndex
from repro.ann.recall import recall_at_k
from repro.core.params import IndexParams
from repro.core.quantized import build_quantized_index
from repro.utils import ensure_rng

Key = Tuple[int, int, int, int, int]  # (nlist, nprobe, k, M, CB)


@dataclass
class AccuracyTable:
    """recall@k lookup for evaluated parameter points."""

    entries: Dict[Key, float] = field(default_factory=dict)

    @staticmethod
    def key_of(params: IndexParams) -> Key:
        return (
            params.nlist,
            params.nprobe,
            params.k,
            params.num_subspaces,
            params.codebook_size,
        )

    def record(self, params: IndexParams, recall: float) -> None:
        if not 0.0 <= recall <= 1.0:
            raise ValueError(f"recall must be in [0, 1], got {recall}")
        self.entries[self.key_of(params)] = recall

    def lookup(self, params: IndexParams) -> float:
        key = self.key_of(params)
        if key not in self.entries:
            raise KeyError(f"accuracy not measured for {key}")
        return self.entries[key]

    def __contains__(self, params: IndexParams) -> bool:
        return self.key_of(params) in self.entries

    def satisfying(self, threshold: float):
        """All measured points meeting the constraint."""
        return {k: v for k, v in self.entries.items() if v >= threshold}


def measure_accuracy_table(
    base: np.ndarray,
    queries: np.ndarray,
    ground_truth: np.ndarray,
    *,
    nlist_values: Sequence[int],
    nprobe_values: Sequence[int],
    m_values: Sequence[int],
    cb_values: Sequence[int] = (256,),
    k: int = 10,
    seed=None,
) -> AccuracyTable:
    """Measure recall@k over a parameter grid with the integer pipeline.

    One index is trained per (nlist, M, CB); every nprobe is then a
    cheap additional search on it.
    """
    rng = ensure_rng(seed)
    table = AccuracyTable()
    for nlist in nlist_values:
        for m in m_values:
            for cb in cb_values:
                index = IVFPQIndex.build(
                    base,
                    nlist=nlist,
                    num_subspaces=m,
                    codebook_size=cb,
                    seed=rng,
                )
                quant = build_quantized_index(index)
                for nprobe in nprobe_values:
                    if nprobe > nlist:
                        continue
                    res = quant.reference_search(queries, k, nprobe)
                    rec = recall_at_k(res.ids, ground_truth, k)
                    table.record(
                        IndexParams(
                            nlist=nlist,
                            nprobe=nprobe,
                            k=k,
                            num_subspaces=m,
                            codebook_size=cb,
                        ),
                        rec,
                    )
    return table
