"""Multiplier-less ANNS conversion (§III-A).

UPMEM DPUs have no hardware multiplier: a 32-bit multiply costs ~32
cycles of ``mul_step`` instructions, while a WRAM load costs one issue
slot. L2 distance computation squares *differences of small integers*
(query byte minus centroid byte minus codebook element), so the set of
possible operands is tiny and every square can be precomputed offline
into a lookup table — a **lossless** transformation.

:class:`SquareLut` stores ``sq[v] = v*v`` for ``v`` in
``[-max_abs, +max_abs]`` with an offset index. For 8-bit data the full
residual range is ±255 and, after codebook subtraction, ±765 — a 6 KB
i32 table that fits comfortably in the DPU's 64 KB WRAM next to the
per-task ADC LUT. For 16-bit operands the full table (256 K entries ×
4 B = 1 MB) exceeds WRAM; the paper keeps a *partial* LUT of small
values resident and constructs the rest on demand, which
:meth:`SquareLut.partial` models: lookups outside the resident range
are still functionally exact but are charged as misses (extra MRAM
traffic) by the LC kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class SquareLut:
    """Precomputed integer-square table.

    Attributes
    ----------
    max_abs: largest |operand| covered by the resident table.
    resident_max_abs: largest |operand| whose square is resident
        on-chip (== max_abs for the full-table case). Lookups beyond it
        are functionally served but counted as misses.
    """

    max_abs: int
    resident_max_abs: int
    table: np.ndarray  # (2*max_abs+1,) int64, table[v + max_abs] = v*v

    def __post_init__(self) -> None:
        if self.max_abs < 0:
            raise ValueError("max_abs must be >= 0")
        if not 0 <= self.resident_max_abs <= self.max_abs:
            raise ValueError(
                "resident_max_abs must be in [0, max_abs], got "
                f"{self.resident_max_abs} vs {self.max_abs}"
            )
        expect = 2 * self.max_abs + 1
        if self.table.shape != (expect,):
            raise ValueError(f"table must have shape ({expect},), got {self.table.shape}")

    # ----- construction ------------------------------------------------
    @classmethod
    def for_bit_width(cls, operand_bits: int, levels: int = 1) -> "SquareLut":
        """Full table for operands that are differences of ``levels``
        unsigned ``operand_bits``-bit values.

        ``levels=1`` covers ``a`` itself; ``levels=2`` covers ``a - b``;
        ``levels=3`` covers ``a - b - c`` (query − centroid − codebook),
        the LC operand in DRIM-ANN.
        """
        if operand_bits not in (8, 16):
            raise ValueError(f"operand_bits must be 8 or 16, got {operand_bits}")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        max_abs = ((1 << operand_bits) - 1) * levels
        v = np.arange(-max_abs, max_abs + 1, dtype=np.int64)
        return cls(max_abs=max_abs, resident_max_abs=max_abs, table=v * v)

    def partial(self, resident_max_abs: int) -> "SquareLut":
        """A copy whose resident window is restricted (16-bit scenario)."""
        return SquareLut(
            max_abs=self.max_abs,
            resident_max_abs=int(resident_max_abs),
            table=self.table,
        )

    # ----- lookup -------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """On-chip footprint of the resident window (int32 entries)."""
        return (2 * self.resident_max_abs + 1) * 4

    def square(self, values: np.ndarray) -> Tuple[np.ndarray, int]:
        """Vectorized squaring through the table.

        Returns ``(squares, miss_count)`` where ``miss_count`` is how
        many lookups fell outside the resident window (they are still
        exact — the full table exists off-chip — but the LC kernel
        charges them extra traffic).
        """
        v = np.asarray(values)
        if not np.issubdtype(v.dtype, np.integer):
            raise TypeError(f"square LUT operands must be integers, got {v.dtype}")
        if v.size and (v.min() < -self.max_abs or v.max() > self.max_abs):
            raise ValueError(
                f"operand out of range ±{self.max_abs}: "
                f"[{v.min()}, {v.max()}]"
            )
        misses = int(np.count_nonzero(np.abs(v) > self.resident_max_abs))
        return self.table[v.astype(np.int64) + self.max_abs], misses


class SquareTermCache:
    """Cached per-cluster centroid square terms for the CL phase.

    CL expands ``||q - c||² = q·q + c·c − 2 q·cᵀ``; the ``c·c`` row
    depends only on the centroid table, so serving loops that locate a
    micro-batch every few milliseconds can reuse it instead of
    recomputing ``nlist`` dot products per call. The cached row is the
    exact same int64 einsum the uncached path produced — reuse is
    bit-invisible.

    Keyed on the centroid array's identity and shape/dtype, so swapping
    in a rebuilt centroid table invalidates automatically; call
    :meth:`invalidate` explicitly after in-place mutation.
    """

    def __init__(self) -> None:
        self._key: Tuple = ()
        self._terms = None

    def terms(self, centroids: np.ndarray) -> np.ndarray:
        """``(1, nlist)`` int64 row of per-centroid squared norms."""
        key = (id(centroids), centroids.shape, centroids.dtype.str)
        if self._terms is None or self._key != key:
            c = centroids.astype(np.int64)
            self._terms = np.einsum("ij,ij->i", c, c)[None, :]
            self._key = key
        return self._terms

    def invalidate(self) -> None:
        """Drop the cached row (index rebuild / in-place mutation)."""
        self._key = ()
        self._terms = None
