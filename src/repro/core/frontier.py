"""Recall-throughput Pareto frontier.

The DSE answers "fastest configuration meeting a recall floor"; users
often want the whole trade-off curve instead — which configurations are
*undominated* (no other config is both faster and more accurate). This
module computes that frontier from a measured
:class:`~repro.core.accuracy.AccuracyTable` plus the analytic
performance model, i.e. entirely offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.accuracy import AccuracyTable
from repro.core.params import IndexParams
from repro.core.perf_model import AnalyticPerfModel


@dataclass(frozen=True)
class FrontierPoint:
    """One undominated configuration."""

    params: IndexParams
    recall: float
    modeled_seconds: float

    @property
    def qps_per_query_batch(self) -> float:
        return 1.0 / self.modeled_seconds if self.modeled_seconds > 0 else float("inf")


def pareto_frontier(
    table: AccuracyTable,
    model: AnalyticPerfModel,
    *,
    host_phases: Sequence[str] = ("CL",),
) -> List[FrontierPoint]:
    """Undominated (recall, time) points among the table's entries.

    Returns points sorted by ascending modeled time; recall is strictly
    increasing along the result (the defining property of a frontier).
    Entries whose parameters are invalid for the model's dataset shape
    (dimension divisibility) are skipped.
    """
    candidates: List[FrontierPoint] = []
    for (nlist, nprobe, k, m, cb), recall in table.entries.items():
        params = IndexParams(
            nlist=nlist, nprobe=nprobe, k=k, num_subspaces=m, codebook_size=cb
        )
        if model.shape.dim % m != 0:
            continue
        seconds = model.split_seconds(params, host_phases=tuple(host_phases))
        candidates.append(
            FrontierPoint(params=params, recall=recall, modeled_seconds=seconds)
        )
    if not candidates:
        return []
    candidates.sort(key=lambda p: (p.modeled_seconds, -p.recall))
    frontier: List[FrontierPoint] = []
    best_recall = -1.0
    for p in candidates:
        if p.recall > best_recall:
            frontier.append(p)
            best_recall = p.recall
    return frontier


def knee_point(frontier: Sequence[FrontierPoint]) -> FrontierPoint:
    """The frontier point with the best marginal recall per time.

    Normalizes both axes to [0, 1] over the frontier and picks the
    point with maximum (recall_gain - time_cost) — a simple knee
    heuristic for "a good default configuration".
    """
    if not frontier:
        raise ValueError("empty frontier")
    if len(frontier) == 1:
        return frontier[0]
    t = [p.modeled_seconds for p in frontier]
    r = [p.recall for p in frontier]
    t0, t1 = min(t), max(t)
    r0, r1 = min(r), max(r)
    span_t = max(t1 - t0, 1e-12)
    span_r = max(r1 - r0, 1e-12)
    scores = [
        (r[i] - r0) / span_r - (t[i] - t0) / span_t for i in range(len(frontier))
    ]
    return frontier[max(range(len(frontier)), key=scores.__getitem__)]
