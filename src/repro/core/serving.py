"""Online serving simulation: arrivals, batching, per-query latency.

The paper evaluates batch throughput; a serving deployment (its RAG
motivation) cares about *per-query latency under load*. This module
closes that gap on top of the engine:

* :class:`PoissonArrivals` — an open-loop arrival process;
* :class:`BatchingPolicy` — queries queue and a batch launches when
  ``batch_size`` are waiting or the oldest has waited ``max_wait_s``
  (the standard size-or-timeout rule);
* :func:`simulate_serving` — replays the stream through the engine,
  charging each query queueing delay + its batch's modeled end-to-end
  time, and reports the latency distribution.

The PIM is single-tenant (host-synchronous): batches execute strictly
one after another, so a long batch delays everything behind it — tail
latency is where load imbalance hurts, which is why the balanced
engine's p99 improves far more than its mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.engine import DrimAnnEngine
from repro.utils import ensure_rng


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson arrival process."""

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")

    def sample(self, num_queries: int, seed=None) -> np.ndarray:
        """Sorted arrival timestamps (seconds) for ``num_queries``."""
        rng = ensure_rng(seed)
        gaps = rng.exponential(1.0 / self.rate_qps, size=num_queries)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BatchingPolicy:
    """Size-or-timeout batch formation."""

    batch_size: int = 64
    max_wait_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class ServingReport:
    """Latency distribution of one serving run."""

    latencies_s: np.ndarray  # per query, arrival -> results returned
    batch_sizes: List[int]
    busy_seconds: float  # total engine busy time
    makespan_s: float  # last completion - first arrival

    @property
    def num_queries(self) -> int:
        return len(self.latencies_s)

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies_s, q) * 1e3)

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_s.mean() * 1e3)

    @property
    def achieved_qps(self) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return self.num_queries / self.makespan_s

    @property
    def utilization(self) -> float:
        """Engine busy time / makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return min(self.busy_seconds / self.makespan_s, 1.0)

    def summary(self) -> str:
        return (
            f"{self.num_queries} queries: mean {self.mean_ms:.2f} ms, "
            f"p50 {self.percentile_ms(50):.2f} ms, "
            f"p95 {self.percentile_ms(95):.2f} ms, "
            f"p99 {self.percentile_ms(99):.2f} ms; "
            f"{self.achieved_qps:,.0f} QPS at {self.utilization:.0%} utilization"
        )


def simulate_serving(
    engine: DrimAnnEngine,
    queries: np.ndarray,
    arrivals_s: np.ndarray,
    policy: BatchingPolicy = BatchingPolicy(),
    *,
    with_scheduler: bool = True,
) -> ServingReport:
    """Replay a timestamped query stream through the engine.

    Service times are the engine's modeled end-to-end batch times; the
    functional results are computed (and discarded — callers wanting
    them should search directly), so recall-affecting behavior is
    identical to offline runs.
    """
    queries = np.asarray(queries)
    arrivals_s = np.asarray(arrivals_s, dtype=np.float64)
    if len(arrivals_s) != len(queries):
        raise ValueError(
            f"{len(arrivals_s)} arrivals != {len(queries)} queries"
        )
    if np.any(np.diff(arrivals_s) < 0):
        raise ValueError("arrivals must be sorted")
    n = len(queries)
    completion = np.zeros(n)
    batch_sizes: List[int] = []
    busy = 0.0

    engine_free_at = 0.0
    i = 0
    while i < n:
        # Oldest waiter sets the timeout; a full batch may launch
        # earlier; a busy engine can only launch when it frees up.
        deadline = arrivals_s[i] + policy.max_wait_s
        k_full = i + policy.batch_size - 1
        if k_full < n and arrivals_s[k_full] <= deadline:
            launch = max(arrivals_s[k_full], engine_free_at)
            j = i + policy.batch_size
        else:
            launch = max(deadline, engine_free_at)
            j = i
            while (
                j < n
                and j - i < policy.batch_size
                and arrivals_s[j] <= launch
            ):
                j += 1
        batch = queries[i:j]
        _, bd = engine.search(batch, with_scheduler=with_scheduler)
        service = bd.e2e_seconds
        done = launch + service
        completion[i:j] = done
        busy += service
        engine_free_at = done
        batch_sizes.append(j - i)
        i = j

    return ServingReport(
        latencies_s=completion - arrivals_s,
        batch_sizes=batch_sizes,
        busy_seconds=busy,
        makespan_s=float(completion.max() - arrivals_s.min()) if n else 0.0,
    )
