"""Online serving simulation: arrivals, batching, per-query latency.

The paper evaluates batch throughput; a serving deployment (its RAG
motivation) cares about *per-query latency under load*. This module
closes that gap on top of the engine:

* :class:`PoissonArrivals` — an open-loop arrival process;
* :class:`BatchingPolicy` — queries queue and a batch launches when
  ``batch_size`` are waiting or the oldest has waited ``max_wait_s``
  (the standard size-or-timeout rule); ``dispatch="per_query"`` turns
  coalescing off for A/B comparisons;
* :class:`MicroBatcher` — the window-formation rule itself, factored
  out so tests can drive it step by step;
* :func:`simulate_serving` — replays the stream through the engine,
  charging each query queueing delay + its batch's modeled end-to-end
  time, and reports the latency distribution.

Coalescing only changes *when* queries run, never *what* they compute:
each micro-batch is one batched engine round, and the engine's batched
rounds are bit-identical to per-query rounds (the PR 4 differential
harness enforces this), so ``dispatch="coalesce"`` and
``dispatch="per_query"`` return byte-for-byte equal ids/distances —
``simulate_serving(..., return_results=True)`` exposes them so tests
can prove it.

The PIM is single-tenant (host-synchronous): batches execute strictly
one after another, so a long batch delays everything behind it — tail
latency is where load imbalance hurts, which is why the balanced
engine's p99 improves far more than its mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ann.ivfpq import SearchResult
from repro.core.engine import DrimAnnEngine
from repro.core.results import ServingOutcome
from repro.utils import ensure_rng


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson arrival process."""

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")

    def sample(self, num_queries: int, seed=None) -> np.ndarray:
        """Sorted arrival timestamps (seconds) for ``num_queries``."""
        rng = ensure_rng(seed)
        gaps = rng.exponential(1.0 / self.rate_qps, size=num_queries)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BatchingPolicy:
    """Size-or-timeout batch formation, plus an optional deadline.

    ``deadline_s`` bounds a query's arrival→completion latency. Under
    overload (or after fault-recovery stalls) the engine falls behind;
    ``overload_policy`` picks what happens to queries that cannot meet
    the deadline:

    * ``"degrade"`` (default) — serve them anyway and count the miss;
    * ``"shed"`` — drop queries already past their deadline at batch
      launch (they could not possibly meet it), protecting the queries
      behind them.

    ``dispatch`` selects how queued queries reach the engine:

    * ``"coalesce"`` (default) — the size-or-timeout micro-batch
      window above;
    * ``"per_query"`` — every arrival is its own engine round, the
      no-batching baseline ``bench_serving_tail`` compares against.
    """

    batch_size: int = 64
    max_wait_s: float = 2e-3
    deadline_s: Optional[float] = None
    overload_policy: str = "degrade"
    dispatch: str = "coalesce"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 or None")
        if self.overload_policy not in ("degrade", "shed"):
            raise ValueError(
                f"overload_policy must be 'degrade' or 'shed', "
                f"got {self.overload_policy!r}"
            )
        if self.dispatch not in ("coalesce", "per_query"):
            raise ValueError(
                f"dispatch must be 'coalesce' or 'per_query', "
                f"got {self.dispatch!r}"
            )


@dataclass(frozen=True)
class MicroBatch:
    """One formed micro-batch: who runs, when, and where the queue resumes."""

    members: np.ndarray  # query indices admitted to this round
    launch: float  # wall-clock time the round starts
    next_index: int  # first queue index the next window starts from


class MicroBatcher:
    """Applies a :class:`BatchingPolicy` window to a sorted arrival stream.

    Pure queue mechanics — no engine, no results. ``next_batch`` is
    deterministic given ``(i, engine_free_at)``, which lets the property
    tests step the window formation directly and assert invariants
    (members contiguous, launch >= every member's arrival, windows never
    overlap) without running searches.
    """

    def __init__(
        self, arrivals_s: np.ndarray, policy: BatchingPolicy
    ) -> None:
        self.arrivals_s = np.asarray(arrivals_s, dtype=np.float64)
        self.policy = policy

    def next_batch(self, i: int, engine_free_at: float) -> MicroBatch:
        """Form the batch whose oldest waiter is queue index ``i``."""
        arrivals_s = self.arrivals_s
        policy = self.policy
        n = len(arrivals_s)
        if policy.dispatch == "per_query":
            launch = max(float(arrivals_s[i]), engine_free_at)
            return MicroBatch(np.arange(i, i + 1), launch, i + 1)
        # Oldest waiter sets the timeout; a full batch may launch
        # earlier; a busy engine can only launch when it frees up.
        deadline = arrivals_s[i] + policy.max_wait_s
        k_full = i + policy.batch_size - 1
        if k_full < n and arrivals_s[k_full] <= deadline:
            launch = max(arrivals_s[k_full], engine_free_at)
            j = i + policy.batch_size
        else:
            launch = max(deadline, engine_free_at)
            j = i
            while (
                j < n
                and j - i < policy.batch_size
                and arrivals_s[j] <= launch
            ):
                j += 1
        return MicroBatch(np.arange(i, j), float(launch), j)


@dataclass
class ServingReport:
    """Latency distribution (and degradation ledger) of one serving run."""

    latencies_s: np.ndarray  # per served query, arrival -> results returned
    batch_sizes: List[int]
    busy_seconds: float  # total engine busy time
    makespan_s: float  # last completion - first arrival
    # Fault / overload accounting (zero on a healthy, unloaded run).
    shed_queries: int = 0  # dropped at launch under the shed policy
    deadline_misses: int = 0  # served but past deadline_s
    degraded_queries: int = 0  # served with partial cluster coverage
    task_retries: int = 0  # (query, shard) tasks re-dispatched
    transfer_timeouts: int = 0
    transient_faults: int = 0
    dead_dpus: int = 0  # distinct fail-stopped DPUs observed
    backoff_seconds: float = 0.0
    # Cluster-tier accounting (zero on single-engine runs).
    admission_rejected: int = 0  # turned away before queueing
    hedged_requests: int = 0  # shard requests hedged past the budget
    node_retries: int = 0  # shard requests failed over to a replica
    dead_nodes: int = 0  # engine replicas blacklisted as crashed
    mean_coverage: float = 1.0  # mean served-probe fraction per query

    @property
    def num_queries(self) -> int:
        """Queries actually served (shed queries are excluded)."""
        return len(self.latencies_s)

    @property
    def num_offered(self) -> int:
        """Queries that arrived, served, shed, or rejected."""
        return self.num_queries + self.shed_queries + self.admission_rejected

    def percentile_ms(self, q: float) -> float:
        if self.num_queries == 0:
            return 0.0
        return float(np.percentile(self.latencies_s, q) * 1e3)

    @property
    def mean_ms(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return float(self.latencies_s.mean() * 1e3)

    @property
    def achieved_qps(self) -> float:
        if self.makespan_s <= 0:
            return float("inf")
        return self.num_queries / self.makespan_s

    @property
    def utilization(self) -> float:
        """Engine busy time / makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return min(self.busy_seconds / self.makespan_s, 1.0)

    @property
    def degraded_fraction(self) -> float:
        """Served-with-partial-coverage fraction of offered queries."""
        if self.num_offered == 0:
            return 0.0
        return self.degraded_queries / self.num_offered

    @property
    def availability(self) -> float:
        """Fraction of offered queries served at full coverage."""
        if self.num_offered == 0:
            return 1.0
        return (self.num_queries - self.degraded_queries) / self.num_offered

    def to_dict(self) -> dict:
        """JSON-safe form for the CLI ``--json`` envelope."""
        return {
            "num_queries": self.num_queries,
            "num_offered": self.num_offered,
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "achieved_qps": (
                None if self.makespan_s <= 0 else self.achieved_qps
            ),
            "utilization": self.utilization,
            "makespan_s": self.makespan_s,
            "busy_seconds": self.busy_seconds,
            "shed_queries": self.shed_queries,
            "deadline_misses": self.deadline_misses,
            "degraded_queries": self.degraded_queries,
            "task_retries": self.task_retries,
            "transfer_timeouts": self.transfer_timeouts,
            "transient_faults": self.transient_faults,
            "dead_dpus": self.dead_dpus,
            "backoff_seconds": self.backoff_seconds,
            "admission_rejected": self.admission_rejected,
            "hedged_requests": self.hedged_requests,
            "node_retries": self.node_retries,
            "dead_nodes": self.dead_nodes,
            "mean_coverage": self.mean_coverage,
            "availability": self.availability,
        }

    def summary(self) -> str:
        if self.num_offered == 0:
            return "0 queries"
        text = (
            f"{self.num_queries} queries: mean {self.mean_ms:.2f} ms, "
            f"p50 {self.percentile_ms(50):.2f} ms, "
            f"p95 {self.percentile_ms(95):.2f} ms, "
            f"p99 {self.percentile_ms(99):.2f} ms; "
            f"{self.achieved_qps:,.0f} QPS at {self.utilization:.0%} utilization"
        )
        if self.shed_queries or self.deadline_misses:
            text += (
                f"; {self.shed_queries} shed, "
                f"{self.deadline_misses} deadline misses"
            )
        if self.admission_rejected:
            text += f"; {self.admission_rejected} rejected by admission"
        if self.hedged_requests or self.node_retries or self.dead_nodes:
            text += (
                f"; cluster: {self.dead_nodes} dead nodes, "
                f"{self.node_retries} node retries, "
                f"{self.hedged_requests} hedges, "
                f"coverage {self.mean_coverage:.1%}"
            )
        if self.degraded_queries or self.dead_dpus or self.task_retries:
            text += (
                f"; faults: {self.dead_dpus} dead DPUs, "
                f"{self.task_retries} task retries, "
                f"{self.transient_faults} transients, "
                f"{self.transfer_timeouts} xfer timeouts, "
                f"{self.degraded_queries} degraded "
                f"(availability {self.availability:.1%})"
            )
        return text


def simulate_serving(
    engine: DrimAnnEngine,
    queries: np.ndarray,
    arrivals_s: np.ndarray,
    policy: BatchingPolicy = BatchingPolicy(),
    *,
    with_scheduler: bool = True,
    return_results: bool = False,
    plan: Optional[str] = None,
) -> ServingOutcome:
    """Replay a timestamped query stream through the engine.

    Service times are the engine's modeled end-to-end batch times; the
    functional results are computed per micro-batch, so recall-affecting
    behavior is identical to offline runs. ``return_results=True``
    retains them on ``outcome.results`` in arrival order (shed queries
    keep the -1/+inf fill) so callers can verify that coalescing never
    changes bits. ``plan`` forwards to :meth:`DrimAnnEngine.search` to
    pin the data-plane execution strategy for every round.

    Returns a :class:`~repro.core.results.ServingOutcome` wrapping the
    :class:`ServingReport` (attribute access forwards, so existing
    ``report.percentile_ms(99)``-style callers are unaffected) plus a
    metrics snapshot when the engine has observability enabled —
    including the streaming ``drimann_serving_latency_seconds``
    percentile sketch, which gives p50/p95/p99 without retaining the
    per-query latency array.
    """
    queries = np.asarray(queries)
    arrivals_s = np.asarray(arrivals_s, dtype=np.float64)
    if len(arrivals_s) != len(queries):
        raise ValueError(
            f"{len(arrivals_s)} arrivals != {len(queries)} queries"
        )
    if np.any(np.diff(arrivals_s) < 0):
        raise ValueError("arrivals must be sorted")
    n = len(queries)
    completion = np.full(n, np.nan)
    served = np.zeros(n, dtype=bool)
    batch_sizes: List[int] = []
    busy = 0.0
    shed = 0
    misses = 0
    degraded = 0
    retries = 0
    timeouts = 0
    transients = 0
    backoff = 0.0
    dead: set = set()
    obs = engine.observer
    batcher = MicroBatcher(arrivals_s, policy)
    out_ids: Optional[np.ndarray] = None
    out_dist: Optional[np.ndarray] = None

    engine_free_at = 0.0
    i = 0
    while i < n:
        batch = batcher.next_batch(i, engine_free_at)
        members, launch, j = batch.members, batch.launch, batch.next_index
        if obs is not None:
            obs.on_queue_depth(len(members))
        if policy.deadline_s is not None and policy.overload_policy == "shed":
            # Queries already past their deadline at launch cannot
            # possibly meet it — drop them rather than slowing the
            # queue further.
            viable = launch - arrivals_s[members] <= policy.deadline_s
            dropped = int(np.count_nonzero(~viable))
            shed += dropped
            if dropped and obs is not None:
                obs.on_shed(dropped)
            members = members[viable]
            if len(members) == 0:
                i = j
                continue
        # The policy already shaped the batch: dispatch it as a single
        # PIM round rather than re-chunking by SearchParams.batch_size.
        res, bd = engine.search(
            queries[members], with_scheduler=with_scheduler,
            execution="batched", plan=plan,
        )
        if return_results:
            if out_ids is None:
                k = res.ids.shape[1]
                out_ids = np.full((n, k), -1, dtype=res.ids.dtype)
                out_dist = np.full((n, k), np.inf, dtype=res.distances.dtype)
            out_ids[members] = res.ids
            out_dist[members] = res.distances
        service = bd.e2e_seconds
        done = launch + service
        completion[members] = done
        served[members] = True
        busy += service
        engine_free_at = done
        batch_sizes.append(len(members))
        if obs is not None:
            obs.on_serving_batch(len(members))
            for lat in done - arrivals_s[members]:
                obs.on_query_latency(float(lat))
        if policy.deadline_s is not None:
            new_misses = int(
                np.count_nonzero(
                    done - arrivals_s[members] > policy.deadline_s
                )
            )
            misses += new_misses
            if new_misses and obs is not None:
                obs.on_deadline_miss(new_misses)
        if bd.faults is not None:
            degraded += len(bd.faults.degraded_queries)
            retries += bd.faults.task_retries
            timeouts += bd.faults.transfer_timeouts
            transients += bd.faults.transient_faults
            backoff += bd.faults.backoff_seconds
            dead |= bd.faults.dead_dpus
        i = j

    makespan = 0.0
    if served.any():
        makespan = float(completion[served].max() - arrivals_s.min())
    report = ServingReport(
        latencies_s=(completion - arrivals_s)[served],
        batch_sizes=batch_sizes,
        busy_seconds=busy,
        makespan_s=makespan,
        shed_queries=shed,
        deadline_misses=misses,
        degraded_queries=degraded,
        task_retries=retries,
        transfer_timeouts=timeouts,
        transient_faults=transients,
        dead_dpus=len(dead),
        backoff_seconds=backoff,
    )
    results = None
    if return_results and out_ids is not None:
        results = SearchResult(ids=out_ids, distances=out_dist)
    return ServingOutcome(
        report,
        metrics=obs.snapshot() if obs is not None else None,
        results=results,
    )
