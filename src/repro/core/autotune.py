"""Batch-size auto-tuning.

The engine's ``batch_size`` trades three effects:

* larger batches amortize per-launch transfer latency and give the
  scheduler more tasks to balance (better DPU utilization);
* smaller batches shorten the host-synchronous critical path (lower
  per-query latency) and let host CL overlap more finely;
* under an open-loop arrival stream, batch size couples with the
  queueing delay of the size-or-timeout batching policy.

:func:`tune_batch_size` sweeps candidate sizes against either
objective — offline throughput (queries/s over a fixed query set) or
serving p99 latency at a target arrival rate — and returns the best
setting with the full sweep for inspection. The engine's batch size is
mutable (`SearchParams` is frozen, so a new instance is installed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import DrimAnnEngine
from repro.core.serving import BatchingPolicy, PoissonArrivals, simulate_serving

DEFAULT_CANDIDATES = (16, 32, 64, 128, 256)


@dataclass(frozen=True)
class BatchTuneResult:
    """Outcome of a batch-size sweep."""

    best_batch_size: int
    objective: str
    # (batch_size, score) — score is QPS (higher better) for
    # "throughput", p99 ms (lower better) for "p99".
    sweep: Tuple[Tuple[int, float], ...]

    def score_of(self, batch_size: int) -> float:
        for b, s in self.sweep:
            if b == batch_size:
                return s
        raise KeyError(batch_size)


def tune_batch_size(
    engine: DrimAnnEngine,
    queries: np.ndarray,
    *,
    objective: str = "throughput",
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    arrival_rate_qps: Optional[float] = None,
    max_wait_s: float = 2e-3,
    apply: bool = True,
    seed=0,
) -> BatchTuneResult:
    """Sweep batch sizes and (optionally) install the winner.

    Parameters
    ----------
    objective: ``"throughput"`` (offline QPS) or ``"p99"`` (serving
        tail latency; requires ``arrival_rate_qps``).
    apply: install the winning batch size into the engine.
    """
    if objective not in ("throughput", "p99"):
        raise ValueError(f"objective must be 'throughput' or 'p99', got {objective!r}")
    if objective == "p99" and arrival_rate_qps is None:
        raise ValueError("objective='p99' requires arrival_rate_qps")
    if not candidates:
        raise ValueError("candidates must be non-empty")
    queries = np.asarray(queries)

    original = engine.search_params
    sweep: List[Tuple[int, float]] = []
    try:
        for bs in candidates:
            engine.search_params = replace(original, batch_size=int(bs))
            if objective == "throughput":
                _, bd = engine.search(queries)
                sweep.append((int(bs), bd.throughput_qps))
            else:
                arrivals = PoissonArrivals(arrival_rate_qps).sample(
                    len(queries), seed=seed
                )
                rep = simulate_serving(
                    engine,
                    queries,
                    arrivals,
                    BatchingPolicy(batch_size=int(bs), max_wait_s=max_wait_s),
                )
                sweep.append((int(bs), rep.percentile_ms(99)))
    finally:
        engine.search_params = original

    if objective == "throughput":
        best = max(sweep, key=lambda t: t[1])[0]
    else:
        best = min(sweep, key=lambda t: t[1])[0]
    if apply:
        engine.search_params = replace(original, batch_size=best)
    return BatchTuneResult(
        best_batch_size=best, objective=objective, sweep=tuple(sweep)
    )
